"""Tests for list hints and sentinels."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ld import LIST_HEAD, ListHints


def test_defaults_cluster_without_compression():
    hints = ListHints()
    assert hints.cluster
    assert not hints.compress
    assert hints.interlist_cluster


def test_pack_unpack_roundtrip_defaults():
    hints = ListHints()
    assert ListHints.unpack(hints.pack()) == hints


@given(st.booleans(), st.booleans(), st.booleans())
def test_pack_unpack_roundtrip_all(cluster, compress, interlist):
    hints = ListHints(cluster=cluster, compress=compress, interlist_cluster=interlist)
    assert ListHints.unpack(hints.pack()) == hints


def test_list_head_sentinel_is_negative():
    # Must never collide with a real block/list id (those are >= 0).
    assert LIST_HEAD < 0


def test_hints_are_immutable():
    hints = ListHints()
    try:
        hints.cluster = False
        mutated = True
    except AttributeError:
        mutated = False
    assert not mutated
