"""Table 1 conformance: every LD implementation exposes the paper's primitives.

The LD interface is designed "to support multiple file systems and to allow
multiple implementations". This test pins the primitive set across all three
implementations in this repository.
"""

import inspect

import pytest

from repro.ld import LogicalDisk

PRIMITIVES = [
    # Table 1
    "read",
    "write",
    "new_block",
    "delete_block",
    "new_list",
    "delete_list",
    "begin_aru",
    "end_aru",
    "flush",
    # Section 2.2 auxiliary primitives
    "reserve_blocks",
    "cancel_reservation",
    "move_sublist",
    "move_list",
    "flush_list",
    "initialize",
    "shutdown",
]

# Vectored read extensions: declared on the interface with a generic
# fallback, so every implementation (specialized or not) provides them.
VECTORED = [
    "read_blocks",
    "read_list",
]


def implementations():
    from repro.lld import LLD
    from repro.uld import ULD
    from repro.loge import LogeDisk

    return [LLD, ULD, LogeDisk]


@pytest.mark.parametrize("name", PRIMITIVES)
def test_interface_declares_primitive(name):
    assert hasattr(LogicalDisk, name)
    assert callable(getattr(LogicalDisk, name))


@pytest.mark.parametrize("name", PRIMITIVES)
def test_all_implementations_provide_primitive(name):
    for cls in implementations():
        assert issubclass(cls, LogicalDisk)
        method = getattr(cls, name, None)
        assert method is not None, f"{cls.__name__} lacks {name}"
        assert not getattr(method, "__isabstractmethod__", False), (
            f"{cls.__name__}.{name} is still abstract"
        )


@pytest.mark.parametrize("name", VECTORED)
def test_vectored_reads_available_everywhere(name):
    assert callable(getattr(LogicalDisk, name))
    assert not getattr(getattr(LogicalDisk, name), "__isabstractmethod__", False)
    for cls in implementations():
        method = getattr(cls, name, None)
        assert method is not None, f"{cls.__name__} lacks {name}"
        assert callable(method)


def test_interface_is_abstract():
    with pytest.raises(TypeError):
        LogicalDisk()  # type: ignore[abstract]


def test_primitives_documented():
    for name in PRIMITIVES:
        doc = inspect.getdoc(getattr(LogicalDisk, name))
        assert doc, f"LogicalDisk.{name} lacks a docstring"
