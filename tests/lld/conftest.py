"""Shared fixtures for LLD tests: small disks, fast configs."""

import pytest

from repro.disk import SimulatedDisk, fast_test_disk
from repro.lld import LLD, LLDConfig
from repro.sim import VirtualClock


def small_config(**overrides) -> LLDConfig:
    """A 64 KB-segment config that keeps tests fast but realistic."""
    defaults = dict(
        segment_size=64 * 1024,
        summary_capacity=4096,
        block_size=4096,
        checkpoint_slots=1,
        min_free_segments=2,
    )
    defaults.update(overrides)
    return LLDConfig(**defaults)


def make_lld(capacity_mb: int = 4, **config_overrides) -> LLD:
    """A fresh, initialized LLD on a fresh simulated disk."""
    disk = SimulatedDisk(fast_test_disk(capacity_mb=capacity_mb), VirtualClock())
    lld = LLD(disk, small_config(**config_overrides))
    lld.initialize()
    return lld


def reopen(lld: LLD, after_crash: bool = True) -> LLD:
    """Simulate crash (or clean shutdown) and bring up a new instance."""
    if after_crash:
        lld.crash()
    else:
        lld.shutdown()
    fresh = LLD(lld.disk, lld.config)
    fresh.initialize()
    return fresh


@pytest.fixture
def lld() -> LLD:
    return make_lld()
