"""Crash-state explorer: recording, enumeration, and LLD invariants.

The end-to-end tests run the standard matrix workload on a recorded LLD,
materialize every enumerated crash image, recover each one, and check the
four durability invariants. The regression pair at the bottom pins the
defect the explorer surfaced in the paper-faithful write path: an
in-place summary rewrite that tears after the header sector loses
*acknowledged* records, and the ``torn_write_protection`` protocol
eliminates exactly that failure.
"""

from collections import Counter

import pytest

from repro.crashsim import (
    CrashStateEnumerator,
    LLDCrashChecker,
    OracleDriver,
    RecordingDisk,
    run_matrix_workload,
)
from repro.disk import SimulatedDisk, fast_test_disk
from repro.lld import LLD
from repro.sim import VirtualClock

from tests.lld.conftest import small_config


def recorded_lld(**config_overrides):
    """A fresh LLD on a RecordingDisk, plus its oracle driver."""
    config = small_config(**config_overrides)
    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    recording = RecordingDisk(disk)
    lld = LLD(recording, config)
    lld.initialize()
    return lld, recording, OracleDriver(lld, recording)


def small_workload(driver):
    return run_matrix_workload(
        driver, n_small=6, n_overwrites=2, generations=2, n_fill=8
    )


# ----------------------------------------------------------------------
# RecordingDisk
# ----------------------------------------------------------------------


class TestRecordingDisk:
    def test_journals_writes_with_epochs(self):
        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        recording = RecordingDisk(disk)
        recording.write(0, b"a" * 512)
        recording.write(8, b"b" * 1024)
        recording.barrier("first")
        recording.write(2, b"c" * 512)
        assert [e.seq for e in recording.events] == [0, 1, 2]
        assert [e.epoch for e in recording.events] == [0, 0, 1]
        assert [e.nsectors for e in recording.events] == [1, 2, 1]
        assert recording.barriers[0].label == "first"
        assert recording.barriers[0].position == 2

    def test_empty_epochs_are_skipped(self):
        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        recording = RecordingDisk(disk)
        recording.barrier("idle")
        recording.barrier("idle")
        recording.write(0, b"x" * 512)
        recording.barrier("real")
        recording.barrier("idle-again")
        assert len(recording.barriers) == 1
        assert recording.epoch_count == 1
        assert recording.epoch_bounds() == [(0, 1)]

    def test_writes_pass_through_and_reads_do_not_journal(self):
        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        recording = RecordingDisk(disk)
        recording.write(5, b"y" * 512)
        assert disk.peek(5, 1) == b"y" * 512
        recording.read(5, 1)
        recording.peek(5, 1)
        assert recording.position == 1
        # Inner-disk counters are visible through the wrapper.
        assert recording.stats.writes == 1
        assert recording.stats.reads == 1

    def test_base_image_snapshot(self):
        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        disk.write(3, b"pre" + b"\x00" * 509)
        recording = RecordingDisk(disk)
        recording.write(7, b"post" + b"\x00" * 508)
        base = recording.base_image()
        assert 3 in base and 7 not in base

    def test_lld_barriers_land_at_choke_points(self):
        lld, recording, driver = recorded_lld(torn_write_protection=True)
        small_workload(driver)
        labels = {b.label for b in recording.barriers}
        assert "summary-guard" in labels
        assert "segment-image" in labels
        # The flush-end barrier usually closes an epoch some earlier
        # barrier (segment-image) already closed, so RecordingDisk
        # coalesces it away — but the disk still counted every announce.
        assert recording.stats.barriers >= len(recording.barriers)
        # Every acknowledgement must sit on an epoch boundary: the oracle
        # snapshot positions coincide with recorded barrier positions.
        boundary_positions = {b.position for b in recording.barriers}
        assert all(p.seq in boundary_positions for p in driver.oracle.points)


# ----------------------------------------------------------------------
# CrashStateEnumerator
# ----------------------------------------------------------------------


class TestEnumerator:
    def build(self):
        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        recording = RecordingDisk(disk)
        recording.write(0, b"a" * 512)
        recording.write(8, b"b" * 2048)  # 4 sectors -> 3 torn states
        recording.barrier("one")
        recording.write(16, b"c" * 512)
        recording.write(24, b"d" * 512)
        recording.write(32, b"e" * 512)
        recording.barrier("two")
        return disk, recording

    def test_prefixes_and_torn_counts(self):
        _disk, recording = self.build()
        states = CrashStateEnumerator(recording).enumerate()
        kinds = Counter(s.kind for s in states)
        assert kinds["prefix"] == len(recording.events) + 1
        assert kinds["torn"] == 3  # splits 1..3 of the 4-sector write
        # Proper subsets that are themselves in-order prefixes dedup
        # against the prefix states: epoch one keeps only {w1}; epoch two
        # keeps {w3}, {w4}, {w2,w4}, {w3,w4}.
        assert kinds["reorder"] == 5

    def test_plans_are_distinct(self):
        _disk, recording = self.build()
        states = CrashStateEnumerator(recording).enumerate()
        assert len({s.plan for s in states}) == len(states)

    def test_full_prefix_reproduces_the_live_disk(self):
        disk, recording = self.build()
        enum = CrashStateEnumerator(recording)
        states = enum.enumerate()
        full = next(
            s
            for s in states
            if s.kind == "prefix" and s.covered_seq == len(recording.events)
        )
        image = enum.materialize(full)
        for lba in (0, 8, 9, 10, 11, 16, 24, 32):
            assert image.peek(lba, 1) == disk.peek(lba, 1)

    def test_torn_state_applies_sector_prefix(self):
        _disk, recording = self.build()
        enum = CrashStateEnumerator(recording)
        torn = [s for s in states_of_kind(enum, "torn") if s.detail == "w1+2/4"]
        assert len(torn) == 1
        image = enum.materialize(torn[0])
        assert image.peek(8, 2) == b"b" * 1024  # first two sectors landed
        assert image.peek(10, 2) == b"\x00" * 1024  # rest did not

    def test_max_states_cap(self):
        _disk, recording = self.build()
        states = CrashStateEnumerator(recording, max_states=4).enumerate()
        assert len(states) == 4

    def test_torn_split_sampling_keeps_boundaries(self):
        enum = CrashStateEnumerator.__new__(CrashStateEnumerator)
        enum.max_torn_splits_per_write = 4
        splits = enum._torn_splits(128)
        assert len(splits) == 4
        assert splits[0] == 1 and splits[-1] == 127


def states_of_kind(enum, kind):
    return [s for s in enum.enumerate() if s.kind == kind]


# ----------------------------------------------------------------------
# End-to-end: matrix workload, recovery, invariants
# ----------------------------------------------------------------------


class TestInvariants:
    def explore(self, **config_overrides):
        lld, recording, driver = recorded_lld(**config_overrides)
        small_workload(driver)
        enum = CrashStateEnumerator(recording)
        checker = LLDCrashChecker(lld.config, driver.oracle)
        return enum.explore(checker)

    def test_protected_write_path_has_no_violations(self):
        report = self.explore(torn_write_protection=True)
        assert report.states_total > 100
        assert report.states_by_kind.get("prefix", 0) > 0
        assert report.states_by_kind.get("torn", 0) > 0
        assert report.states_by_kind.get("reorder", 0) > 0
        assert report.violations == []

    def test_every_state_recovers_and_reports_cost(self):
        report = self.explore(torn_write_protection=True)
        assert len(report.recovery_seconds) == report.states_total
        assert report.recovery_seconds_max > 0
        # Tolerance: mean is a float sum, max is exact.
        assert 0 < report.recovery_seconds_mean <= report.recovery_seconds_max + 1e-9

    def test_oracle_snapshots_cover_the_run(self):
        lld, recording, driver = recorded_lld(torn_write_protection=True)
        small_workload(driver)
        points = driver.oracle.points
        assert len(points) > 10
        assert all(a.seq <= b.seq for a, b in zip(points, points[1:]))
        assert points[-1].seq == recording.position
        # Suffix-match indexing: a crash covering everything honours the
        # final snapshot; one covering nothing honours none.
        assert driver.oracle.latest_covered_index(recording.position) == len(points) - 1
        assert driver.oracle.latest_covered_index(0) == -1


# ----------------------------------------------------------------------
# Regression: the torn-summary defect the explorer surfaced
# ----------------------------------------------------------------------


class TestTornSummaryRegression:
    """The explorer found that the paper-faithful in-place summary
    rewrite loses acknowledged records under a torn write (the new
    header lands, the new body does not, the CRC rejects the slot and
    recovery skips everything it held). This pair of tests pins both the
    detection and the fix."""

    def test_unprotected_write_path_loses_acked_data_under_torn_writes(self):
        lld, recording, driver = recorded_lld(torn_write_protection=False)
        small_workload(driver)
        enum = CrashStateEnumerator(recording)
        checker = LLDCrashChecker(lld.config, driver.oracle)
        report = enum.explore(checker)
        lost = [v for v in report.violations if v.invariant == "acked-durability"]
        assert lost, "explorer must catch the torn-summary data loss"
        assert all(v.kind in ("torn", "reorder") for v in report.violations)
        # Every prefix state (no tearing, no reordering) is still sound:
        # the defect needs a mid-write crash to manifest.
        assert not [v for v in report.violations if v.kind == "prefix"]

    def test_protection_eliminates_the_defect(self):
        report = TestInvariants().explore(torn_write_protection=True)
        assert report.violations == []

    def test_protection_splits_summary_updates_at_the_header(self):
        lld, recording, driver = recorded_lld(torn_write_protection=True)
        small_workload(driver)
        guard_positions = [
            b.position for b in recording.barriers if b.label == "summary-guard"
        ]
        assert guard_positions, "protected flushes must issue the guard barrier"
        for position in guard_positions:
            # The write right after the guard is the atomic header flip.
            flip = recording.events[position]
            assert flip.nsectors == 1
