"""Fault injection: torn writes, corrupted summaries, bad checkpoints.

One-sweep recovery must degrade gracefully: a summary that fails its
checksum is skipped (its segment's most recent records are lost, exactly
as if the segment write never completed), everything else stays intact.
"""

import pytest

from repro.ld import LIST_HEAD
from repro.lld import LLD

from tests.lld.conftest import make_lld, reopen


def seal_with_block(lld, lid, payload):
    """Write blocks until a segment seals; returns the bids written."""
    bids = []
    prev = LIST_HEAD
    sealed_before = lld.stats.segments_sealed
    while lld.stats.segments_sealed == sealed_before:
        bid = lld.new_block(lid, prev)
        lld.write(bid, payload)
        bids.append(bid)
        prev = bid
    return bids


def test_corrupted_summary_is_skipped_not_fatal():
    lld = make_lld()
    lid = lld.new_list()
    first_batch = seal_with_block(lld, lid, b"\x51" * 4096)
    second_batch = seal_with_block(lld, lid, b"\x52" * 4096)
    lld.flush()
    # Tear the most recently sealed segment's summary.
    sealed_slots = sorted(
        s for s in lld.state.summary_min_ts if s != lld.open_segment_index
    )
    victim = sealed_slots[-1]
    lld.disk.corrupt(lld.layout.slot_lba(victim), 1)
    recovered = reopen(lld)
    # Recovery survives; blocks recorded in intact summaries are fine.
    report = recovered.recovery_report
    assert report is not None
    assert report.summaries_valid < report.segments_scanned
    survivors = [b for b in first_batch if b in recovered.state.blocks]
    assert survivors, "fully intact older segments must survive"
    for bid in survivors:
        entry = recovered.state.blocks[bid]
        if entry.segment >= 0 and entry.segment != victim:
            # Location record intact: the data must be exact. (A block
            # whose BLOCK record lived in the torn summary legitimately
            # loses its contents — same as an incomplete segment write.)
            assert recovered.read(bid) == b"\x51" * 4096


def test_torn_write_of_open_segment():
    """Crash mid-way through the final segment write: only that write is
    lost; the previously flushed state is intact."""
    lld = make_lld()
    lid = lld.new_list()
    written = seal_with_block(lld, lid, b"\x50" * 4096)
    open_slot = lld.open_segment_index
    # Blocks whose records live in *sealed* segments (the final block of
    # the batch spilled into the open segment and shares its fate).
    stable_bids = [
        b for b in written if lld.state.blocks[b].segment != open_slot
    ]
    assert stable_bids

    late = lld.new_block(lid, written[-1])
    lld.write(late, b"late data")
    lld.flush()
    # Simulate the torn write: the flush's summary half-arrived.
    lld.disk.corrupt(lld.layout.slot_lba(open_slot), 1)

    recovered = reopen(lld)
    # The spill block's LINK record was sealed before the tear, so it is
    # still on the list — but its data (BLOCK record) was in the torn
    # summary and is gone, exactly like an incomplete write.
    assert recovered.list_blocks(lid) == written
    for bid in stable_bids:
        assert recovered.read(bid) == b"\x50" * 4096
    spilled = written[-1]
    assert recovered.state.blocks[spilled].segment < 0
    assert recovered.read(spilled) == b""
    assert late not in recovered.state.blocks


def test_corrupted_checkpoint_falls_back_to_sweep():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"resilient")
    lld.shutdown()  # flush + checkpoint
    lld.disk.corrupt(lld.layout.checkpoint_lba, 1)
    fresh = LLD(lld.disk, lld.config)
    fresh.initialize()
    # Fallback to one-sweep recovery, data intact.
    assert fresh.recovery_report is not None
    assert fresh.read(bid) == b"resilient"
    assert fresh.list_blocks(lid) == [bid]


def test_corrupted_checkpoint_body_detected_by_crc():
    lld = make_lld()
    lid = lld.new_list()
    # Enough state that the checkpoint image spans multiple sectors.
    bids = []
    prev = LIST_HEAD
    for i in range(64):
        bid = lld.new_block(lid, prev)
        lld.write(bid, bytes([i]) * 256)
        bids.append(bid)
        prev = bid
    lld.shutdown()
    # Corrupt a sector inside the checkpoint body, not the header.
    lld.disk.corrupt(lld.layout.checkpoint_lba + 1, 1)
    fresh = LLD(lld.disk, lld.config)
    fresh.initialize()
    assert fresh.recovery_report is not None  # sweep, not the bad image
    for i, bid in enumerate(bids):
        assert fresh.read(bid) == bytes([i]) * 256


def test_multiple_corrupted_summaries():
    lld = make_lld()
    lid = lld.new_list()
    for _ in range(4):
        seal_with_block(lld, lid, b"\x53" * 4096)
    lld.flush()
    for slot in list(lld.state.summary_min_ts)[:2]:
        if slot != lld.open_segment_index:
            lld.disk.corrupt(lld.layout.slot_lba(slot), 2)
    recovered = reopen(lld)  # must not raise
    assert recovered.recovery_report is not None
    # The LD remains usable for new work.
    new_lid = recovered.new_list()
    new_bid = recovered.new_block(new_lid, LIST_HEAD)
    recovered.write(new_bid, b"life goes on")
    assert recovered.read(new_bid) == b"life goes on"


def test_data_corruption_does_not_break_metadata():
    """LD (like the paper's) has no data checksums: a corrupted data
    sector yields wrong bytes, but the structures stay consistent."""
    lld = make_lld()
    lid = lld.new_list()
    bids = seal_with_block(lld, lid, b"\x54" * 4096)
    lld.flush()
    entry = lld.state.blocks[bids[0]]
    lba, _n, _skew = lld.layout.block_extent(
        entry.segment, entry.offset, entry.stored_length
    )
    lld.disk.corrupt(lba, 1)
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == bids
    corrupted = recovered.read(bids[0])
    assert len(corrupted) == 4096  # structurally sound
    assert corrupted != b"\x54" * 4096  # but the bytes are gone
    assert recovered.read(bids[1]) == b"\x54" * 4096  # neighbours intact


def test_whole_disk_corruption_yields_empty_ld():
    lld = make_lld()
    lid = lld.new_list()
    seal_with_block(lld, lid, b"\x55" * 4096)
    lld.flush()
    for slot in range(lld.layout.segment_count):
        lld.disk.corrupt(lld.layout.slot_lba(slot), lld.config.summary_sectors)
    lld.disk.corrupt(lld.layout.checkpoint_lba, 1)
    recovered = reopen(lld)
    assert recovered.recovery_report.summaries_valid == 0
    assert len(recovered.state.blocks) == 0
    # mkfs-from-scratch still works on the wreckage.
    fresh_lid = recovered.new_list()
    bid = recovered.new_block(fresh_lid, LIST_HEAD)
    recovered.write(bid, b"rebuilt")
    assert recovered.read(bid) == b"rebuilt"
