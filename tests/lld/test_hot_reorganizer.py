"""Tests for adaptive hot-block rearrangement (paper §5.3)."""

import random

import pytest

from repro.ld import LIST_HEAD
from repro.ld.errors import ARUError

from tests.lld.conftest import make_lld, reopen


def scattered_hot_cold(lld, blocks=60, hot_every=6):
    """Blocks interleaved so the hot set is physically scattered."""
    lid = lld.new_list()
    bids = []
    prev = LIST_HEAD
    for i in range(blocks):
        bid = lld.new_block(lid, prev)
        lld.write(bid, bytes([i % 251]) * 4096)
        bids.append(bid)
        prev = bid
    lld.flush()
    hot = bids[::hot_every]
    return lid, bids, hot


def test_read_counts_tracked():
    lld = make_lld()
    lid, bids, hot = scattered_hot_cold(lld)
    for _ in range(5):
        lld.read(hot[0])
    assert lld.read_counts[hot[0]] == 5


def test_reorganize_hot_moves_top_fraction():
    lld = make_lld()
    lid, bids, hot = scattered_hot_cold(lld)
    for _round in range(10):
        for bid in hot:
            lld.read(bid)
    # Only the hot set has read counts, so fraction 1.0 of the tracked
    # population is exactly the hot set.
    moved = lld.reorganize_hot(top_fraction=1.0)
    assert moved == len(hot)
    # The hot blocks now sit together in one or two segments.
    segments = {lld.state.blocks[bid].segment for bid in hot}
    assert len(segments) <= 2


def test_reorganize_hot_preserves_contents():
    lld = make_lld()
    lid, bids, hot = scattered_hot_cold(lld)
    expected = {bid: lld.read(bid) for bid in bids}
    for bid in hot:
        for _ in range(3):
            lld.read(bid)
    lld.reorganize_hot()
    for bid in bids:
        assert lld.read(bid) == expected[bid]
    assert lld.list_blocks(lid) == bids
    lld.flush()
    recovered = reopen(lld)
    for bid in bids:
        assert recovered.read(bid) == expected[bid]


def test_hot_set_reads_faster_after_rearrangement():
    """The §5.3 claim: clustering hot blocks cuts access time."""

    def hot_read_time(rearrange: bool) -> float:
        lld = make_lld(capacity_mb=16)
        _lid, _bids, hot = scattered_hot_cold(lld, blocks=150, hot_every=15)
        rng = random.Random(23)
        # Warm the frequency counters.
        for _ in range(5):
            for bid in hot:
                lld.read(bid)
        if rearrange:
            lld.reorganize_hot(top_fraction=0.1)
            lld.flush()
        # Ensure nothing is served from the open segment.
        lld.flush()
        clock = lld.disk.clock
        t0 = clock.now
        for _ in range(20):
            lld.read(rng.choice(hot))
        return clock.now - t0

    assert hot_read_time(True) <= hot_read_time(False)


def test_reorganize_hot_with_no_reads_is_noop():
    lld = make_lld()
    scattered_hot_cold(lld)
    lld.read_counts.clear()
    assert lld.reorganize_hot() == 0


def test_reorganize_hot_inside_aru_rejected():
    lld = make_lld()
    lld.begin_aru()
    with pytest.raises(ARUError):
        lld.reorganize_hot()


def test_bad_fraction_rejected():
    lld = make_lld()
    with pytest.raises(ValueError):
        lld.reorganize_hot(top_fraction=0.0)
    with pytest.raises(ValueError):
        lld.reorganize_hot(top_fraction=1.5)
