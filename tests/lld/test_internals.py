"""Internals: recovery sweep details, checkpoint edge cases, state queries."""

import pytest

from repro.ld import LIST_HEAD
from repro.lld import LLD, LLDConfig
from repro.lld.checkpoint import CheckpointTooLargeError
from repro.lld.recovery import sweep_summaries
from repro.lld.state import LLDState

from tests.lld.conftest import make_lld, reopen, small_config


def test_sweep_returns_slot_ordered_summaries():
    lld = make_lld()
    lid = lld.new_list()
    prev = LIST_HEAD
    for _ in range(40):
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\x61" * 4096)
        prev = bid
    lld.flush()
    slots = [slot for slot, _records in sweep_summaries(lld)]
    assert slots == sorted(slots)
    assert len(slots) >= 2


def test_checkpoint_too_large_raises():
    from repro.disk import SimulatedDisk, fast_test_disk
    from repro.sim import VirtualClock

    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    # A one-slot checkpoint region of 64 KB.
    lld = LLD(disk, small_config(checkpoint_slots=1))
    lld.initialize()
    lid = lld.new_list()
    prev = LIST_HEAD
    # Tens of thousands of block entries exceed 64 KB of image.
    state = lld.state
    from repro.lld.state import BlockEntry

    for bid in range(2, 5000):
        state.blocks[bid] = BlockEntry()
    with pytest.raises(CheckpointTooLargeError):
        lld.checkpoint.save(state)


def test_min_summary_timestamp_with_exclusions():
    state = LLDState()
    state.summary_min_ts = {0: 100, 1: 50, 2: 200}
    assert state.min_summary_timestamp() == 50
    assert state.min_summary_timestamp(exclude=1) == 100
    assert state.min_summary_timestamp(exclude={0, 1}) == 200
    assert state.min_summary_timestamp(exclude={0, 1, 2}) is None


def test_find_predecessor_with_and_without_hint():
    lld = make_lld()
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    c = lld.new_block(lid, b)
    state = lld.state
    assert state.find_predecessor(lid, a) is None
    assert state.find_predecessor(lid, c) == b
    assert state.find_predecessor(lid, c, hint=b) == b
    # A wrong hint falls back to the scan and still finds the truth.
    assert state.find_predecessor(lid, c, hint=a) == b


def test_find_predecessor_unknown_block():
    from repro.ld.errors import NoSuchBlockError

    lld = make_lld()
    lid = lld.new_list()
    lld.new_block(lid, LIST_HEAD)
    with pytest.raises(NoSuchBlockError):
        lld.state.find_predecessor(lid, 9999)


def test_free_segment_count_excludes_open():
    lld = make_lld()
    total = lld.layout.segment_count
    assert lld.free_segment_count() == total - 1  # all but the open slot


def test_live_bytes_tracks_writes_and_deletes():
    lld = make_lld()
    lid = lld.new_list()
    assert lld.state.live_bytes() == 0
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x62" * 1000)
    assert lld.state.live_bytes() == 1000
    lld.write(bid, b"\x63" * 500)
    assert lld.state.live_bytes() == 500
    lld.delete_block(bid, lid)
    assert lld.state.live_bytes() == 0


def test_stats_extra_dicts_exist():
    lld = make_lld()
    assert lld.stats.extra == {}
    lld.stats.extra["custom"] = 1
    assert lld.stats.extra["custom"] == 1


def test_summary_min_ts_updates_on_partial_and_seal():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x64" * 4096)
    open_slot = lld.open_segment_index
    assert open_slot not in lld.state.summary_min_ts
    lld.flush()  # partial write records the min timestamp
    assert open_slot in lld.state.summary_min_ts


def test_recovery_handles_interleaved_timestamps():
    """Records from different segments interleave by timestamp; recovery
    must apply them in global order, not per-slot order."""
    lld = make_lld()
    l1 = lld.new_list()
    l2 = lld.new_list()
    a = lld.new_block(l1, LIST_HEAD)
    # Fill to force a seal so l1/l2 updates land in different summaries.
    prev = a
    while lld.stats.segments_sealed == 0:
        filler = lld.new_block(l2, LIST_HEAD)
        lld.write(filler, b"\x65" * 4096)
    b = lld.new_block(l1, a)  # later record in a later summary
    lld.write(a, b"first")
    lld.write(b, b"second")
    lld.flush()
    recovered = reopen(lld)
    assert recovered.list_blocks(l1) == [a, b]
    assert recovered.read(a) == b"first"
    assert recovered.read(b) == b"second"
