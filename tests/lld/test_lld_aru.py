"""Atomic recovery unit semantics: all-or-nothing across crashes."""

import pytest

from repro.ld import LIST_HEAD
from repro.ld.errors import ARUError, NoSuchBlockError

from tests.lld.conftest import make_lld, reopen


def test_begin_end_basic():
    lld = make_lld()
    aru = lld.begin_aru()
    assert aru > 0
    assert lld.in_aru
    lld.end_aru()
    assert not lld.in_aru


def test_nested_aru_rejected():
    lld = make_lld()
    lld.begin_aru()
    with pytest.raises(ARUError):
        lld.begin_aru()


def test_end_without_begin_rejected():
    lld = make_lld()
    with pytest.raises(ARUError):
        lld.end_aru()


def test_shutdown_inside_aru_rejected():
    lld = make_lld()
    lld.begin_aru()
    with pytest.raises(ARUError):
        lld.shutdown()


def test_committed_aru_survives_crash():
    lld = make_lld()
    lid = lld.new_list()
    lld.begin_aru()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    lld.write(a, b"file data")
    lld.write(b, b"directory entry")
    lld.end_aru()
    lld.flush()
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == [a, b]
    assert recovered.read(a) == b"file data"
    assert recovered.read(b) == b"directory entry"


def test_uncommitted_aru_discarded_on_crash():
    """The create-file-and-update-directory example from paper §2.1."""
    lld = make_lld()
    lid = lld.new_list()
    stable = lld.new_block(lid, LIST_HEAD)
    lld.write(stable, b"pre-existing")
    lld.flush()

    lld.begin_aru()
    doomed = lld.new_block(lid, stable)
    lld.write(doomed, b"half-created file")
    lld.flush()  # durable but NOT committed

    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == [stable]
    assert recovered.read(stable) == b"pre-existing"
    with pytest.raises(NoSuchBlockError):
        recovered.read(doomed)
    assert recovered.recovery_report.arus_discarded == 1


def test_uncommitted_overwrite_rolls_back():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"version 1")
    lld.flush()
    lld.begin_aru()
    lld.write(bid, b"version 2 (aborted)")
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(bid) == b"version 1"


def test_uncommitted_delete_rolls_back():
    lld = make_lld()
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    lld.write(a, b"A")
    lld.write(b, b"B")
    lld.flush()
    lld.begin_aru()
    lld.delete_block(a, lid)
    lld.flush()
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == [a, b]
    assert recovered.read(a) == b"A"


def test_sequential_arus_commit_independently():
    lld = make_lld()
    lid = lld.new_list()
    lld.begin_aru()
    a = lld.new_block(lid, LIST_HEAD)
    lld.write(a, b"first")
    lld.end_aru()
    lld.begin_aru()
    b = lld.new_block(lid, a)
    lld.write(b, b"second (aborted)")
    lld.flush()  # aru 2 never ends
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == [a]
    assert recovered.read(a) == b"first"


def test_aru_spanning_segment_seal():
    """An ARU whose records span multiple segments still commits atomically."""
    lld = make_lld()
    lid = lld.new_list()
    lld.begin_aru()
    prev = LIST_HEAD
    bids = []
    for _ in range(40):  # crosses at least two 64 KB segments
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\x5a" * 4096)
        bids.append(bid)
        prev = bid
    lld.end_aru()
    lld.flush()
    assert lld.stats.segments_sealed >= 2
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == bids


def test_aru_spanning_segments_aborts_atomically():
    lld = make_lld()
    lid = lld.new_list()
    keep = lld.new_block(lid, LIST_HEAD)
    lld.write(keep, b"keep")
    lld.flush()
    lld.begin_aru()
    prev = keep
    for _ in range(40):
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\xa5" * 4096)
        prev = bid
    lld.flush()  # never committed
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == [keep]
    assert recovered.read(keep) == b"keep"


def test_operations_after_aborted_aru_survive():
    """A later committed operation must not drag an aborted ARU with it."""
    lld = make_lld()
    lid = lld.new_list()
    lld.begin_aru()
    doomed = lld.new_block(lid, LIST_HEAD)
    lld.write(doomed, b"doomed")
    # Crash loses the in-memory ARU state; simulate an application that
    # never calls end_aru but keeps using the LD after reopening.
    lld.flush()
    lld.crash()
    from repro.lld import LLD

    second = LLD(lld.disk, lld.config)
    second.initialize()
    later = second.new_block(lid, LIST_HEAD)
    second.write(later, b"later")
    second.flush()
    recovered = reopen(second)
    assert recovered.read(later) == b"later"
    assert doomed not in recovered.state.blocks or recovered.read(doomed) != b"doomed"
