"""Basic LLD operation: blocks, lists, reads, writes."""

import pytest

from repro.ld import LIST_HEAD, ListHints
from repro.ld.errors import LDError, NoSuchBlockError, NoSuchListError

from tests.lld.conftest import make_lld


def test_requires_initialize():
    lld = make_lld()
    lld.crash()
    with pytest.raises(LDError):
        lld.read(1)


def test_double_initialize_rejected(lld):
    with pytest.raises(LDError):
        lld.initialize()


def test_new_list_and_block(lld):
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    assert lld.list_blocks(lid) == [bid]


def test_block_ids_are_distinct(lld):
    lid = lld.new_list()
    bids = {lld.new_block(lid, LIST_HEAD) for _ in range(50)}
    assert len(bids) == 50


def test_unwritten_block_reads_empty(lld):
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    assert lld.read(bid) == b""


def test_write_read_roundtrip(lld):
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"hello world")
    assert lld.read(bid) == b"hello world"


def test_overwrite_replaces_content(lld):
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"old")
    lld.write(bid, b"new content")
    assert lld.read(bid) == b"new content"


def test_variable_block_sizes(lld):
    """LD supports multiple block sizes (64-byte i-nodes to 4 KB data)."""
    lid = lld.new_list()
    tiny = lld.new_block(lid, LIST_HEAD)
    big = lld.new_block(lid, tiny)
    lld.write(tiny, b"i" * 64)
    lld.write(big, b"d" * 4096)
    assert lld.read(tiny) == b"i" * 64
    assert lld.read(big) == b"d" * 4096


def test_oversized_block_rejected(lld):
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    with pytest.raises(ValueError):
        lld.write(bid, b"x" * (lld.config.block_size + 1))


def test_read_unknown_block(lld):
    with pytest.raises(NoSuchBlockError):
        lld.read(9999)


def test_write_unknown_block(lld):
    with pytest.raises(NoSuchBlockError):
        lld.write(9999, b"data")


def test_unknown_list(lld):
    with pytest.raises(NoSuchListError):
        lld.new_block(777, LIST_HEAD)
    with pytest.raises(NoSuchListError):
        lld.list_blocks(777)


def test_insert_after_predecessor(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    c = lld.new_block(lid, a)  # inserts between a and b
    assert lld.list_blocks(lid) == [a, c, b]


def test_insert_at_head(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, LIST_HEAD)
    assert lld.list_blocks(lid) == [b, a]


def test_delete_block_middle(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    c = lld.new_block(lid, b)
    lld.delete_block(b, lid)
    assert lld.list_blocks(lid) == [a, c]
    with pytest.raises(NoSuchBlockError):
        lld.read(b)


def test_delete_block_head(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    lld.delete_block(a, lid)
    assert lld.list_blocks(lid) == [b]


def test_delete_with_correct_hint_counts_hit(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    lld.delete_block(b, lid, pred_bid_hint=a)
    assert lld.stats.hint_hits == 1
    assert lld.stats.hint_misses == 0


def test_delete_with_stale_hint_falls_back(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    c = lld.new_block(lid, b)
    lld.delete_block(c, lid, pred_bid_hint=a)  # wrong: pred is b
    assert lld.list_blocks(lid) == [a, b]
    assert lld.stats.hint_misses == 1


def test_delete_list_frees_blocks(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    lld.write(a, b"A" * 100)
    lld.delete_list(lid)
    with pytest.raises(NoSuchListError):
        lld.list_blocks(lid)
    with pytest.raises(NoSuchBlockError):
        lld.read(a)
    with pytest.raises(NoSuchBlockError):
        lld.read(b)


def test_multiple_lists_are_independent(lld):
    l1 = lld.new_list()
    l2 = lld.new_list()
    a = lld.new_block(l1, LIST_HEAD)
    b = lld.new_block(l2, LIST_HEAD)
    assert lld.list_blocks(l1) == [a]
    assert lld.list_blocks(l2) == [b]
    lld.delete_list(l1)
    assert lld.list_blocks(l2) == [b]


def test_reads_served_from_open_segment_cost_no_disk_io(lld):
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"fresh" * 100)
    reads_before = lld.disk.stats.reads
    assert lld.read(bid) == b"fresh" * 100
    assert lld.disk.stats.reads == reads_before
    assert lld.stats.memory_reads == 1


def test_reads_hit_disk_after_seal(lld):
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    payload = b"sealed!!" * 512  # 4 KB
    lld.write(bid, payload)
    # Fill the segment to force a seal.
    filler = lld.new_block(lid, bid)
    for _ in range(20):
        lld.write(filler, b"\xaa" * 4096)
    assert lld.stats.segments_sealed >= 1
    reads_before = lld.disk.stats.reads
    assert lld.read(bid) == payload
    assert lld.disk.stats.reads == reads_before + 1


def test_move_sublist_between_lists(lld):
    src = lld.new_list()
    dst = lld.new_list()
    a = lld.new_block(src, LIST_HEAD)
    b = lld.new_block(src, a)
    c = lld.new_block(src, b)
    d = lld.new_block(dst, LIST_HEAD)
    lld.move_sublist(b, c, src, dst, d)
    assert lld.list_blocks(src) == [a]
    assert lld.list_blocks(dst) == [d, b, c]


def test_move_sublist_to_head(lld):
    src = lld.new_list()
    dst = lld.new_list()
    a = lld.new_block(src, LIST_HEAD)
    d = lld.new_block(dst, LIST_HEAD)
    lld.move_sublist(a, a, src, dst, LIST_HEAD)
    assert lld.list_blocks(src) == []
    assert lld.list_blocks(dst) == [a, d]


def test_move_sublist_within_list(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    c = lld.new_block(lid, b)
    lld.move_sublist(c, c, lid, lid, a)
    assert lld.list_blocks(lid) == [a, c, b]


def test_move_sublist_rejects_pred_inside_chain(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    with pytest.raises(ValueError):
        lld.move_sublist(a, b, lid, lid, b)


def test_move_list_reorders_list_of_lists(lld):
    l1 = lld.new_list()
    l2 = lld.new_list(pred_lid=l1)
    l3 = lld.new_list(pred_lid=l2)
    assert lld.state.list_order == [l1, l2, l3]
    lld.move_list(l3, LIST_HEAD)
    assert lld.state.list_order == [l3, l1, l2]
    lld.move_list(l1, l2)
    assert lld.state.list_order == [l3, l2, l1]


def test_new_list_inserts_after_predecessor(lld):
    l1 = lld.new_list()
    l2 = lld.new_list()
    l3 = lld.new_list(pred_lid=l1)
    assert lld.state.list_order.index(l1) + 1 == lld.state.list_order.index(l3)


def test_repr_smoke(lld):
    assert "LLD" in repr(lld)
