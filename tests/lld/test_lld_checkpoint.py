"""Clean shutdown / startup via the checkpoint region (paper §3.6)."""

import pytest

from repro.ld import LIST_HEAD, ListHints
from repro.lld import LLD

from tests.lld.conftest import make_lld, reopen


def test_clean_shutdown_skips_recovery():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"checkpointed")
    fresh = reopen(lld, after_crash=False)
    assert fresh.recovery_report is None  # loaded from checkpoint
    assert fresh.read(bid) == b"checkpointed"
    assert fresh.list_blocks(lid) == [bid]


def test_clean_startup_is_cheaper_than_recovery():
    def populated(after_crash):
        lld = make_lld()
        lid = lld.new_list()
        prev = LIST_HEAD
        for _ in range(50):
            b = lld.new_block(lid, prev)
            lld.write(b, b"\x10" * 4096)
            prev = b
        lld.flush()
        if after_crash:
            lld.crash()
        else:
            lld.shutdown()
        before = lld.disk.clock.now
        fresh = LLD(lld.disk, lld.config)
        fresh.initialize()
        return lld.disk.clock.now - before

    assert populated(after_crash=False) < populated(after_crash=True)


def test_checkpoint_marker_invalidated_after_load():
    """A crash after a clean startup must trigger recovery, not reuse a
    stale checkpoint image."""
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"v1")
    fresh = reopen(lld, after_crash=False)  # clean shutdown + load
    fresh.write(bid, b"v2")
    fresh.flush()
    recovered = reopen(fresh)  # crash: checkpoint must not resurrect v1
    assert recovered.recovery_report is not None
    assert recovered.read(bid) == b"v2"


def test_checkpoint_preserves_hints_and_order():
    lld = make_lld()
    l1 = lld.new_list(hints=ListHints(compress=True))
    l2 = lld.new_list(pred_lid=l1)
    fresh = reopen(lld, after_crash=False)
    assert fresh.state.lists[l1].hints.compress
    assert fresh.state.list_order == [l1, l2]


def test_checkpoint_preserves_tombstones():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"doomed")
    lld.flush()
    lld.delete_block(bid, lid)
    fresh = reopen(lld, after_crash=False)
    # The deletion must hold even across a later crash-recovery.
    recovered = reopen(fresh)
    assert bid not in recovered.state.blocks


def test_shutdown_then_crash_recovery_equivalent():
    lld = make_lld()
    lid = lld.new_list()
    bids = []
    prev = LIST_HEAD
    for i in range(20):
        b = lld.new_block(lid, prev)
        lld.write(b, bytes([i]) * 1024)
        bids.append(b)
        prev = b
    via_checkpoint = reopen(lld, after_crash=False)
    # Now crash the checkpointed instance and recover by sweep.
    via_sweep = reopen(via_checkpoint)
    assert via_sweep.list_blocks(lid) == bids
    for i, b in enumerate(bids):
        assert via_sweep.read(b) == bytes([i]) * 1024


def test_usage_table_rebuilt_from_checkpoint():
    lld = make_lld()
    lid = lld.new_list()
    prev = LIST_HEAD
    for _ in range(30):
        b = lld.new_block(lid, prev)
        lld.write(b, b"\x55" * 4096)
        prev = b
    live_before = lld.state.live_bytes()
    fresh = reopen(lld, after_crash=False)
    assert fresh.state.live_bytes() == live_before
