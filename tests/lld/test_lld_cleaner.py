"""Segment cleaner tests: policies, clustering, metadata re-logging."""

import random

import pytest

from repro.ld import LIST_HEAD
from repro.ld.errors import OutOfSpaceError

from tests.lld.conftest import make_lld, reopen


def fill_blocks(lld, lid, count, data=None, prev=LIST_HEAD):
    data = data or (b"\xee" * 4096)
    bids = []
    for _ in range(count):
        bid = lld.new_block(lid, prev)
        lld.write(bid, data)
        bids.append(bid)
        prev = bid
    return bids


def test_cleaning_triggered_under_pressure():
    lld = make_lld(capacity_mb=2)
    lid = lld.new_list()
    data = random.Random(0).randbytes(4096)
    capacity = lld.layout.capacity_bytes
    bids = fill_blocks(lld, lid, int(capacity * 0.8) // 4096, data)
    rng = random.Random(1)
    for _ in range(60):
        for bid in rng.sample(bids, 8):
            lld.write(bid, data)
    assert lld.stats.cleanings > 0
    assert lld.stats.blocks_cleaned > 0
    for bid in bids:
        assert lld.read(bid) == data
    assert lld.list_blocks(lid) == bids


def test_explicit_clean_frees_segment():
    lld = make_lld()
    lid = lld.new_list()
    bids = fill_blocks(lld, lid, 20)
    assert lld.stats.segments_sealed >= 1
    # Kill most blocks in the first segment to make it a victim.
    for bid in bids[:10]:
        lld.delete_block(bid, lid, pred_bid_hint=None if bid == bids[0] else bids[bids.index(bid) - 1])
    cleaned = lld.clean(1)
    assert cleaned == 1
    assert lld.stats.blocks_cleaned > 0
    for bid in bids[10:]:
        assert lld.read(bid) == b"\xee" * 4096


def test_cleaned_data_survives_crash():
    lld = make_lld(capacity_mb=2)
    lid = lld.new_list()
    data = random.Random(3).randbytes(4096)
    bids = fill_blocks(lld, lid, 100, data)
    for bid in bids[::3]:
        lld.write(bid, data)
    lld.clean(4)
    lld.flush()
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == bids
    for bid in bids:
        assert recovered.read(bid) == data


def test_greedy_picks_emptiest_segment():
    lld = make_lld()
    lid = lld.new_list()
    bids = fill_blocks(lld, lid, 45)  # ~3 segments
    # Empty out most of one mid segment.
    seg_blocks = lld.state.segment_blocks
    sealed = [s for s in seg_blocks if s != lld.open_segment_index and seg_blocks[s]]
    victim_expected = sealed[0]
    live = sorted(seg_blocks[victim_expected])
    for bid in live[:-1]:
        idx = bids.index(bid)
        lld.delete_block(bid, lid, pred_bid_hint=bids[idx - 1] if idx else None)
    choice = lld.cleaner.select_victim()
    usage = lld.state.usage
    assert usage.get(choice, 0) == min(
        usage.get(s, 0) for s in lld.cleaner.candidate_segments()
    )


def test_cost_benefit_prefers_cold_segments():
    lld = make_lld(clean_policy="cost_benefit")
    lid = lld.new_list()
    cold = fill_blocks(lld, lid, 15)  # one old segment
    hot = fill_blocks(lld, lid, 15, prev=cold[-1])
    # Rewrite hot blocks so their segment is young.
    for bid in hot:
        lld.write(bid, b"\x99" * 4096)
    choice = lld.cleaner.select_victim()
    assert choice is not None
    # The chosen victim should contain cold blocks, not the hot rewrite.
    mod = lld.state.segment_mod_ts
    candidates = lld.cleaner.candidate_segments()
    assert mod.get(choice, 0) <= min(mod.get(s, 0) for s in candidates) + 1


def test_cleaner_preserves_list_order_clustering():
    """Blocks copied by the cleaner are reordered along their chains."""
    lld = make_lld()
    lid = lld.new_list()
    bids = fill_blocks(lld, lid, 25)
    victim = next(
        s
        for s in sorted(lld.state.segment_blocks)
        if s != lld.open_segment_index and lld.state.segment_blocks[s]
    )
    order = lld.cleaner._clustered_order(victim)
    live = lld.state.segment_blocks[victim]
    assert set(order) == set(live)
    # Consecutive chain members must be adjacent in the copy order.
    positions = {bid: i for i, bid in enumerate(order)}
    for bid in order:
        succ = lld.state.blocks[bid].successor
        if succ in live:
            assert positions[succ] == positions[bid] + 1


def test_cleaning_open_segment_rejected():
    lld = make_lld()
    with pytest.raises(ValueError):
        lld.cleaner.clean_segment(lld.open_segment_index)


def test_out_of_space_when_disk_truly_full():
    lld = make_lld(capacity_mb=2)
    lid = lld.new_list()
    data = b"\xff" * 4096
    with pytest.raises(OutOfSpaceError):
        prev = LIST_HEAD
        for _ in range(10000):
            bid = lld.new_block(lid, prev)
            lld.write(bid, data)
            prev = bid


def test_space_recovered_after_out_of_space():
    lld = make_lld(capacity_mb=2)
    lid = lld.new_list()
    data = b"\xfe" * 4096
    bids = []
    prev = LIST_HEAD
    try:
        for _ in range(10000):
            bid = lld.new_block(lid, prev)
            lld.write(bid, data)
            bids.append(bid)
            prev = bid
    except OutOfSpaceError:
        pass
    # Delete half, space becomes usable again.
    for i, bid in enumerate(bids[: len(bids) // 2]):
        lld.delete_block(bid, lid, pred_bid_hint=bids[i - 1] if i else None)
    lid2 = lld.new_list()
    fresh = lld.new_block(lid2, LIST_HEAD)
    lld.write(fresh, data)
    assert lld.read(fresh) == data


def test_tombstone_compaction_bounds_memory():
    lld = make_lld(capacity_mb=2, max_tombstones=32)
    lid = lld.new_list()
    data = b"\x31" * 4096
    bids = fill_blocks(lld, lid, 150, data)
    for i, bid in enumerate(bids):
        lld.delete_block(bid, lid, pred_bid_hint=bids[i - 1] if i else None)
    lld.flush()
    # A deep compaction can always drain the table once everything is dead.
    lld.cleaner.compact_tombstones(0, deep=True)
    assert lld.stats.tombstones_dropped > 0
    assert len(lld.state.tombstones) <= 32
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == []
    assert recovered.state.live_bytes() == 0


def test_scrub_slot_rejects_live_segment():
    lld = make_lld()
    lid = lld.new_list()
    fill_blocks(lld, lid, 20)
    live_slot = next(
        s
        for s in lld.state.usage
        if lld.state.usage[s] > 0 and s != lld.open_segment_index
    )
    with pytest.raises(ValueError):
        lld.cleaner.scrub_slot(live_slot)
