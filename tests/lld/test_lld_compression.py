"""Transparent compression tests (paper section 3.3)."""

import pytest

from repro.compress.data import compressible_bytes, random_bytes
from repro.ld import LIST_HEAD, ListHints

from tests.lld.conftest import make_lld, reopen


def compressed_list(lld):
    return lld.new_list(hints=ListHints(compress=True))


def test_compressible_data_stored_smaller():
    lld = make_lld()
    lid = compressed_list(lld)
    bid = lld.new_block(lid, LIST_HEAD)
    data = compressible_bytes(4096, ratio=0.6, seed=21)
    lld.write(bid, data)
    entry = lld.state.blocks[bid]
    assert entry.compressed
    assert entry.stored_length < len(data)
    assert entry.length == len(data)
    assert lld.read(bid) == data


def test_incompressible_data_stored_raw():
    """If compression does not help, the block is stored uncompressed."""
    lld = make_lld()
    lid = compressed_list(lld)
    bid = lld.new_block(lid, LIST_HEAD)
    data = random_bytes(4096, seed=22)
    lld.write(bid, data)
    entry = lld.state.blocks[bid]
    assert not entry.compressed
    assert entry.stored_length == len(data)
    assert lld.read(bid) == data


def test_uncompressed_list_ignores_codec():
    lld = make_lld()
    lid = lld.new_list()  # default: no compression
    bid = lld.new_block(lid, LIST_HEAD)
    data = compressible_bytes(4096, ratio=0.6, seed=23)
    lld.write(bid, data)
    assert not lld.state.blocks[bid].compressed
    assert lld.read(bid) == data


def test_compression_disabled_globally():
    lld = make_lld(compression_enabled=False)
    lid = compressed_list(lld)
    bid = lld.new_block(lid, LIST_HEAD)
    data = compressible_bytes(4096, ratio=0.6, seed=24)
    lld.write(bid, data)
    assert not lld.state.blocks[bid].compressed


def test_more_blocks_fit_when_compressed():
    """Compression increases effective capacity (paper: 1 GB -> 1.7 GB)."""
    plain = make_lld(capacity_mb=2)
    packed = make_lld(capacity_mb=2)
    data = compressible_bytes(4096, ratio=0.5, seed=25)

    def fill(lld, compress):
        lid = lld.new_list(hints=ListHints(compress=compress))
        count = 0
        prev = LIST_HEAD
        from repro.ld.errors import OutOfSpaceError

        try:
            for _ in range(5000):
                bid = lld.new_block(lid, prev)
                lld.write(bid, data)
                prev = bid
                count += 1
        except OutOfSpaceError:
            pass
        return count

    n_plain = fill(plain, compress=False)
    n_packed = fill(packed, compress=True)
    assert n_packed > n_plain * 1.3


def test_compressed_blocks_cleaned_correctly():
    """The cleaner copies compressed bytes verbatim without recompressing."""
    import random

    lld = make_lld(capacity_mb=2)
    lid = compressed_list(lld)
    data = compressible_bytes(4096, ratio=0.6, seed=26)
    bids = []
    prev = LIST_HEAD
    for _ in range(60):
        bid = lld.new_block(lid, prev)
        lld.write(bid, data)
        bids.append(bid)
        prev = bid
    lld.clean(2)
    for bid in bids:
        assert lld.read(bid) == data
    lld.flush()
    recovered = reopen(lld)
    for bid in bids:
        assert recovered.read(bid) == data


def test_compression_charges_cpu_time():
    lld = make_lld()
    lid = compressed_list(lld)
    bid = lld.new_block(lid, LIST_HEAD)
    data = compressible_bytes(4096, ratio=0.6, seed=27)
    lld.write(bid, data)
    lld.flush()
    t0 = lld.disk.clock.now
    lld.read(bid)  # decompression is serial: clock must advance beyond I/O
    decompress_time = 4096 / lld.compression._decompress_bw.bytes_per_second
    assert lld.disk.clock.now - t0 >= decompress_time


def test_compression_cost_model_can_be_disabled():
    lld = make_lld(model_compression_cost=False)
    lid = compressed_list(lld)
    bid = lld.new_block(lid, LIST_HEAD)
    data = compressible_bytes(4096, ratio=0.6, seed=28)
    lld.write(bid, data)
    assert lld.read(bid) == data
    assert lld.state.blocks[bid].compressed


def test_mixed_compressed_and_plain_blocks():
    lld = make_lld()
    packed_lid = compressed_list(lld)
    plain_lid = lld.new_list()
    data = compressible_bytes(2048, ratio=0.6, seed=29)
    a = lld.new_block(packed_lid, LIST_HEAD)
    b = lld.new_block(plain_lid, LIST_HEAD)
    lld.write(a, data)
    lld.write(b, data)
    assert lld.state.blocks[a].compressed
    assert not lld.state.blocks[b].compressed
    assert lld.read(a) == data
    assert lld.read(b) == data
