"""Tests for the paper's §5.4/§5.3 extensions: SwapContents, concurrent
ARUs, offset addressing, and NVRAM absorption of partial segments."""

import pytest

from repro.ld import LIST_HEAD
from repro.ld.errors import ARUError, LDError, NoSuchBlockError
from repro.lld import LLD, NVRAM

from tests.lld.conftest import make_lld, reopen, small_config


# ----------------------------------------------------------------------
# SwapContents (§5.4)
# ----------------------------------------------------------------------


def two_written_blocks(lld):
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    lld.write(a, b"contents A" * 50)
    lld.write(b, b"contents B" * 99)
    return lid, a, b


def test_swap_contents_basic():
    lld = make_lld()
    _lid, a, b = two_written_blocks(lld)
    lld.swap_contents(a, b)
    assert lld.read(a) == b"contents B" * 99
    assert lld.read(b) == b"contents A" * 50


def test_swap_is_involution():
    lld = make_lld()
    _lid, a, b = two_written_blocks(lld)
    lld.swap_contents(a, b)
    lld.swap_contents(a, b)
    assert lld.read(a) == b"contents A" * 50
    assert lld.read(b) == b"contents B" * 99


def test_swap_survives_crash():
    lld = make_lld()
    _lid, a, b = two_written_blocks(lld)
    lld.swap_contents(a, b)
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(a) == b"contents B" * 99
    assert recovered.read(b) == b"contents A" * 50


def test_swap_preserves_usage_accounting():
    lld = make_lld()
    _lid, a, b = two_written_blocks(lld)
    live_before = lld.state.live_bytes()
    lld.swap_contents(a, b)
    assert lld.state.live_bytes() == live_before


def test_swap_multiversion_install():
    """The §5.4 use case: install a new version atomically, keep the old."""
    lld = make_lld()
    lid = lld.new_list()
    current = lld.new_block(lid, LIST_HEAD)
    shadow = lld.new_block(lid, current)
    lld.write(current, b"version 1")
    lld.flush()
    # Prepare version 2 in the shadow block, then install it atomically.
    lld.write(shadow, b"version 2")
    lld.swap_contents(current, shadow)
    assert lld.read(current) == b"version 2"
    assert lld.read(shadow) == b"version 1"  # old version retained


def test_swap_same_block_rejected():
    lld = make_lld()
    _lid, a, _b = two_written_blocks(lld)
    with pytest.raises(ValueError):
        lld.swap_contents(a, a)


def test_swap_unwritten_block_rejected():
    lld = make_lld()
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    b = lld.new_block(lid, a)
    lld.write(a, b"data")
    with pytest.raises(LDError):
        lld.swap_contents(a, b)


def test_swap_inside_uncommitted_aru_rolls_back():
    lld = make_lld()
    _lid, a, b = two_written_blocks(lld)
    lld.flush()
    lld.begin_aru()
    lld.swap_contents(a, b)
    lld.flush()  # durable, never committed
    recovered = reopen(lld)
    assert recovered.read(a) == b"contents A" * 50
    assert recovered.read(b) == b"contents B" * 99


def test_swap_compressed_with_plain():
    from repro.compress.data import compressible_bytes
    from repro.ld import ListHints

    lld = make_lld()
    packed_lid = lld.new_list(hints=ListHints(compress=True))
    plain_lid = lld.new_list()
    a = lld.new_block(packed_lid, LIST_HEAD)
    b = lld.new_block(plain_lid, LIST_HEAD)
    data_a = compressible_bytes(4000, ratio=0.6, seed=51)
    data_b = b"\x9a" * 3000
    lld.write(a, data_a)
    lld.write(b, data_b)
    assert lld.state.blocks[a].compressed
    lld.swap_contents(a, b)
    assert lld.read(a) == data_b
    assert lld.read(b) == data_a
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(a) == data_b
    assert recovered.read(b) == data_a


# ----------------------------------------------------------------------
# Concurrent ARUs (§5.4)
# ----------------------------------------------------------------------


def test_aru_context_manager_commits():
    lld = make_lld()
    lid = lld.new_list()
    with lld.aru() as aru:
        assert aru > 0
        bid = lld.new_block(lid, LIST_HEAD)
        lld.write(bid, b"committed by context exit")
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(bid) == b"committed by context exit"


def test_aru_context_manager_exception_aborts():
    lld = make_lld()
    lid = lld.new_list()
    stable = lld.new_block(lid, LIST_HEAD)
    lld.write(stable, b"stable")
    lld.flush()
    with pytest.raises(RuntimeError):
        with lld.aru():
            doomed = lld.new_block(lid, stable)
            lld.write(doomed, b"doomed")
            raise RuntimeError("application error mid-transaction")
    assert lld.open_aru_count == 0
    lld.flush()
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == [stable]


def test_nested_arus_commit_independently():
    lld = make_lld()
    lid = lld.new_list()
    with lld.aru():
        outer_bid = lld.new_block(lid, LIST_HEAD)
        lld.write(outer_bid, b"outer")
        with lld.aru():
            inner_bid = lld.new_block(lid, outer_bid)
            lld.write(inner_bid, b"inner")
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(outer_bid) == b"outer"
    assert recovered.read(inner_bid) == b"inner"


def test_inner_aru_commits_even_if_outer_aborts():
    """Concurrent ARUs are independent: the inner commit stands alone."""
    lld = make_lld()
    lid = lld.new_list()
    anchor = lld.new_block(lid, LIST_HEAD)
    lld.write(anchor, b"anchor")
    lld.flush()
    try:
        with lld.aru():
            outer_bid = lld.new_block(lid, anchor)
            lld.write(outer_bid, b"outer, aborted")
            with lld.aru():
                inner_bid = lld.new_block(lid, anchor)
                lld.write(inner_bid, b"inner, committed")
            raise RuntimeError("outer aborts after inner committed")
    except RuntimeError:
        pass
    lld.flush()
    recovered = reopen(lld)
    assert inner_bid in recovered.state.blocks
    assert recovered.read(inner_bid) == b"inner, committed"
    assert outer_bid not in recovered.state.blocks


def test_begin_aru_still_serial():
    """The paper-compatible begin/end API remains strictly serial."""
    lld = make_lld()
    lld.begin_aru()
    with pytest.raises(ARUError):
        lld.begin_aru()
    lld.end_aru()
    with pytest.raises(ARUError):
        lld.end_aru()


def test_open_aru_count_tracks():
    lld = make_lld()
    assert lld.open_aru_count == 0
    lld.begin_aru()
    assert lld.open_aru_count == 1
    lld.end_aru()
    assert lld.open_aru_count == 0


# ----------------------------------------------------------------------
# Offset addressing (§5.4)
# ----------------------------------------------------------------------


def test_block_at_indexes_lists():
    lld = make_lld()
    lid = lld.new_list()
    bids = []
    prev = LIST_HEAD
    for _ in range(10):
        bid = lld.new_block(lid, prev)
        bids.append(bid)
        prev = bid
    for i in range(10):
        assert lld.block_at(lid, i) == bids[i]
    assert lld.list_length(lid) == 10


def test_block_at_out_of_range():
    lld = make_lld()
    lid = lld.new_list()
    lld.new_block(lid, LIST_HEAD)
    with pytest.raises(IndexError):
        lld.block_at(lid, 5)
    with pytest.raises(IndexError):
        lld.block_at(lid, -1)


def test_offset_addressing_replaces_indirect_blocks():
    """§5.4: address file blocks by offset in the file's list — no
    indirect blocks needed."""
    lld = make_lld()
    file_list = lld.new_list()
    prev = LIST_HEAD
    for i in range(20):
        bid = lld.new_block(file_list, prev)
        lld.write(bid, bytes([i]) * 512)
        prev = bid
    # "Read file block 13" without any indirect-block lookups:
    assert lld.read(lld.block_at(file_list, 13)) == bytes([13]) * 512


# ----------------------------------------------------------------------
# NVRAM (§5.3)
# ----------------------------------------------------------------------


def make_lld_with_nvram(capacity_bytes=512 * 1024):
    from repro.disk import SimulatedDisk, fast_test_disk
    from repro.sim import VirtualClock

    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    nvram = NVRAM(capacity_bytes=capacity_bytes)
    lld = LLD(disk, small_config(), nvram=nvram)
    lld.initialize()
    return lld, nvram


def test_nvram_absorbs_partial_flush():
    lld, nvram = make_lld_with_nvram()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x11" * 4096)
    writes_before = lld.disk.stats.writes
    lld.flush()
    assert lld.disk.stats.writes == writes_before  # no disk write!
    assert lld.stats.nvram_absorbed == 1
    assert lld.stats.partial_segment_writes == 0
    assert nvram.holds_data


def test_nvram_content_survives_crash():
    lld, nvram = make_lld_with_nvram()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"battery backed" * 100)
    lld.flush()  # into NVRAM only
    lld.crash()
    recovered = LLD(lld.disk, lld.config, nvram=nvram)
    recovered.initialize()
    assert recovered.read(bid) == b"battery backed" * 100
    assert recovered.list_blocks(lid) == [bid]


def test_nvram_cleared_when_segment_seals():
    lld, nvram = make_lld_with_nvram()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x22" * 4096)
    lld.flush()
    assert nvram.holds_data
    prev = bid
    while lld.stats.segments_sealed == 0:
        bid2 = lld.new_block(lid, prev)
        lld.write(bid2, b"\x33" * 4096)
        prev = bid2
    assert not nvram.holds_data  # disk copy superseded it


def test_nvram_too_small_falls_back_to_disk():
    lld, nvram = make_lld_with_nvram(capacity_bytes=2048)
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x44" * 4096)
    writes_before = lld.disk.stats.writes
    lld.flush()
    assert lld.disk.stats.writes == writes_before + 1  # normal partial write
    assert nvram.overflows == 1
    assert lld.stats.partial_segment_writes == 1


def test_nvram_reduces_disk_writes_on_sync_heavy_workload():
    """The §5.3 claim: NVRAM removes most partial-segment disk writes."""

    def run(nvram):
        from repro.disk import SimulatedDisk, fast_test_disk
        from repro.sim import VirtualClock

        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        lld = LLD(disk, small_config(), nvram=nvram)
        lld.initialize()
        lid = lld.new_list()
        prev = LIST_HEAD
        for i in range(30):
            bid = lld.new_block(lid, prev)
            lld.write(bid, bytes([i]) * 2048)
            lld.flush()  # sync-heavy application
            prev = bid
        return disk.stats.writes

    without = run(None)
    with_nvram = run(NVRAM(capacity_bytes=512 * 1024))
    assert with_nvram < without * 0.5


def test_nvram_with_clean_shutdown():
    lld, nvram = make_lld_with_nvram()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"shutdown path")
    lld.shutdown()  # flush absorbs into NVRAM, checkpoint references it
    fresh = LLD(lld.disk, lld.config, nvram=nvram)
    fresh.initialize()
    assert fresh.read(bid) == b"shutdown path"
