"""Partial-segment strategy tests (paper section 3.2).

Below the threshold a Flush writes the partial segment but keeps it in main
memory; the eventual full write replaces the same slot, so the partial
write's physical segment is recycled with no cleaning overhead.
"""

import pytest

from repro.ld import LIST_HEAD

from tests.lld.conftest import make_lld, reopen


def test_flush_below_threshold_is_partial():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x01" * 4096)
    lld.flush()
    assert lld.stats.partial_segment_writes == 1
    assert lld.stats.segments_sealed == 0


def test_flush_above_threshold_seals():
    lld = make_lld(partial_threshold=0.5)
    lid = lld.new_list()
    prev = LIST_HEAD
    data_capacity = lld.config.data_capacity
    written = 0
    while written / data_capacity < 0.6:
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\x02" * 4096)
        written += 4096
        prev = bid
    sealed_before = lld.stats.segments_sealed
    lld.flush()
    assert lld.stats.segments_sealed == sealed_before + 1
    assert lld.stats.partial_segment_writes == 0


def test_open_segment_keeps_filling_after_partial_flush():
    lld = make_lld()
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    lld.write(a, b"A" * 4096)
    lld.flush()
    open_index = lld.open_segment_index
    b = lld.new_block(lid, a)
    lld.write(b, b"B" * 4096)
    # Still the same physical segment: the partial slot is being reused.
    assert lld.open_segment_index == open_index
    assert lld.read(a) == b"A" * 4096
    assert lld.read(b) == b"B" * 4096


def test_partial_then_crash_recovers_partial_content():
    lld = make_lld()
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    lld.write(a, b"A" * 4096)
    lld.flush()
    b = lld.new_block(lid, a)
    lld.write(b, b"B" * 4096)  # never flushed
    recovered = reopen(lld)
    assert recovered.list_blocks(lid) == [a]
    assert recovered.read(a) == b"A" * 4096


def test_multiple_partial_flushes_same_slot():
    """Successive flushes keep filling the same slot; on-disk state is
    always a superset of the previous flush (full image or delta)."""
    lld = make_lld()
    lid = lld.new_list()
    prev = LIST_HEAD
    slot = lld.open_segment_index
    for i in range(3):
        bid = lld.new_block(lid, prev)
        lld.write(bid, bytes([i]) * 2048)
        lld.flush()
        assert lld.open_segment_index == slot
        prev = bid
    assert lld.stats.partial_segment_writes == 3
    recovered = reopen(lld)
    assert len(recovered.list_blocks(lid)) == 3


def test_final_seal_supersedes_partials():
    lld = make_lld()
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    lld.write(a, b"early" * 100)
    lld.flush()  # partial
    prev = a
    while lld.stats.segments_sealed == 0:
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\x0f" * 4096)
        prev = bid
    recovered = reopen(lld)
    assert recovered.read(a) == b"early" * 100


def test_flush_on_empty_segment_is_noop():
    lld = make_lld()
    writes_before = lld.disk.stats.writes
    lld.flush()
    assert lld.disk.stats.writes == writes_before
    assert lld.stats.partial_segment_writes == 0


def test_partial_write_cost_is_one_disk_write():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x03" * 4096)
    writes_before = lld.disk.stats.writes
    lld.flush()
    assert lld.disk.stats.writes == writes_before + 1


def test_flush_rate_affects_write_volume():
    """Frequent flushes rewrite blocks multiple times (the paper's noted
    disadvantage versus Sprite LFS)."""
    frequent = make_lld()
    rare = make_lld()
    for lld, every in ((frequent, 1), (rare, 10**9)):
        lid = lld.new_list()
        prev = LIST_HEAD
        for i in range(10):
            bid = lld.new_block(lid, prev)
            lld.write(bid, b"\x04" * 4096)
            prev = bid
            if (i + 1) % every == 0:
                lld.flush()
    assert (
        frequent.disk.stats.sectors_written > rare.disk.stats.sectors_written
    )
