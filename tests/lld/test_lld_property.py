"""Property-based tests: LLD against a pure-Python model.

A random sequence of LD operations is applied both to LLD and to a trivial
in-memory model. Invariants:

* after every operation the visible state (list contents, block data)
  matches the model;
* after flush + crash + recovery, the recovered state matches the model
  exactly;
* a clean shutdown/startup round-trip also matches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ld import LIST_HEAD

from tests.lld.conftest import make_lld, reopen


class Model:
    """The obviously-correct in-memory reference."""

    def __init__(self) -> None:
        self.lists: dict[int, list[int]] = {}
        self.data: dict[int, bytes] = {}

    def new_list(self, lid: int) -> None:
        self.lists[lid] = []

    def new_block(self, lid: int, pred: int | None, bid: int) -> None:
        chain = self.lists[lid]
        if pred is None:
            chain.insert(0, bid)
        else:
            chain.insert(chain.index(pred) + 1, bid)
        self.data[bid] = b""

    def write(self, bid: int, payload: bytes) -> None:
        self.data[bid] = payload

    def delete_block(self, lid: int, bid: int) -> None:
        self.lists[lid].remove(bid)
        del self.data[bid]

    def delete_list(self, lid: int) -> None:
        for bid in self.lists.pop(lid):
            del self.data[bid]


# Operation encoding for hypothesis: a list of (op, arg1, arg2) tuples with
# indices resolved modulo the live population at execution time.
ops = st.lists(
    st.tuples(
        st.sampled_from(["new_list", "new_block", "write", "delete_block", "delete_list"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=40,
)


def run_ops(lld, model: Model, operations) -> None:
    for op, index, value in operations:
        lids = sorted(model.lists)
        if op == "new_list" or not lids:
            lid = lld.new_list()
            model.new_list(lid)
            continue
        lid = lids[index % len(lids)]
        chain = model.lists[lid]
        if op == "new_block":
            if chain and value % 2 == 0:
                pred = chain[index % len(chain)]
                bid = lld.new_block(lid, pred)
                model.new_block(lid, pred, bid)
            else:
                bid = lld.new_block(lid, LIST_HEAD)
                model.new_block(lid, None, bid)
        elif op == "write":
            if not chain:
                continue
            bid = chain[index % len(chain)]
            payload = bytes([value]) * ((value % 16 + 1) * 64)
            lld.write(bid, payload)
            model.write(bid, payload)
        elif op == "delete_block":
            if not chain:
                continue
            bid = chain[index % len(chain)]
            lld.delete_block(bid, lid)
            model.delete_block(lid, bid)
        elif op == "delete_list":
            lld.delete_list(lid)
            model.delete_list(lid)


def check_matches(lld, model: Model) -> None:
    for lid, chain in model.lists.items():
        assert lld.list_blocks(lid) == chain
    for bid, payload in model.data.items():
        assert lld.read(bid) == payload


@settings(max_examples=40, deadline=None)
@given(ops)
def test_visible_state_matches_model(operations):
    lld = make_lld()
    model = Model()
    run_ops(lld, model, operations)
    check_matches(lld, model)


@settings(max_examples=30, deadline=None)
@given(ops)
def test_flush_crash_recover_matches_model(operations):
    lld = make_lld()
    model = Model()
    run_ops(lld, model, operations)
    lld.flush()
    recovered = reopen(lld)
    check_matches(recovered, model)


@settings(max_examples=20, deadline=None)
@given(ops)
def test_clean_shutdown_matches_model(operations):
    lld = make_lld()
    model = Model()
    run_ops(lld, model, operations)
    fresh = reopen(lld, after_crash=False)
    check_matches(fresh, model)


@settings(max_examples=20, deadline=None)
@given(ops, ops)
def test_recover_then_continue(operations, more_operations):
    """Recovery must leave the LD fully usable for further operations."""
    lld = make_lld()
    model = Model()
    run_ops(lld, model, operations)
    lld.flush()
    recovered = reopen(lld)
    run_ops(recovered, model, more_operations)
    check_matches(recovered, model)


@settings(max_examples=15, deadline=None)
@given(ops)
def test_aborted_aru_leaves_model_state(operations):
    """Everything inside an unfinished ARU disappears; nothing else does."""
    lld = make_lld()
    model = Model()
    run_ops(lld, model, operations)
    lld.flush()
    lld.begin_aru()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"inside aborted aru")
    lld.flush()
    recovered = reopen(lld)
    check_matches(recovered, model)


@settings(max_examples=15, deadline=None)
@given(ops)
def test_usage_table_consistent_with_blocks(operations):
    """The segment usage table equals the sum of live stored lengths."""
    lld = make_lld()
    model = Model()
    run_ops(lld, model, operations)
    per_segment: dict[int, int] = {}
    for bid, entry in lld.state.blocks.items():
        if entry.segment >= 0:
            per_segment[entry.segment] = (
                per_segment.get(entry.segment, 0) + entry.stored_length
            )
    for segment, expected in per_segment.items():
        assert lld.state.usage.get(segment, 0) == expected
    for segment, used in lld.state.usage.items():
        assert used == per_segment.get(segment, 0)
