"""Crash-recovery tests: one-sweep rebuild from segment summaries."""

import pytest

from repro.ld import LIST_HEAD
from repro.ld.errors import NoSuchBlockError, NoSuchListError

from tests.lld.conftest import make_lld, reopen


def test_recovery_on_empty_disk():
    lld = make_lld()
    assert lld.recovery_report is not None
    assert lld.recovery_report.records_applied == 0


def test_flushed_data_survives_crash():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"durable" * 100)
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(bid) == b"durable" * 100
    assert recovered.list_blocks(lid) == [bid]


def test_unflushed_data_lost_on_crash():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.flush()
    bid2 = lld.new_block(lid, bid)
    lld.write(bid2, b"volatile")
    recovered = reopen(lld)  # crash without flush
    assert recovered.list_blocks(lid) == [bid]
    with pytest.raises(NoSuchBlockError):
        recovered.read(bid2)


def test_sealed_segments_survive_without_flush():
    """Data in segments already written to disk needs no flush."""
    lld = make_lld()
    lid = lld.new_list()
    prev = LIST_HEAD
    bids = []
    for _ in range(40):  # > 2 segments worth of 4 KB blocks
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\x42" * 4096)
        bids.append(bid)
        prev = bid
    assert lld.stats.segments_sealed >= 2
    recovered = reopen(lld)
    # At least the blocks in sealed segments survive.
    surviving = [b for b in bids if b in recovered.state.blocks]
    assert len(surviving) >= 15 * lld.stats.segments_sealed // 2


def test_recovery_restores_list_structure():
    lld = make_lld()
    l1 = lld.new_list()
    l2 = lld.new_list()
    a = lld.new_block(l1, LIST_HEAD)
    b = lld.new_block(l1, a)
    c = lld.new_block(l1, a)  # between a and b
    d = lld.new_block(l2, LIST_HEAD)
    lld.delete_block(b, l1)
    lld.flush()
    recovered = reopen(lld)
    assert recovered.list_blocks(l1) == [a, c]
    assert recovered.list_blocks(l2) == [d]


def test_recovery_restores_latest_version():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    for i in range(10):
        lld.write(bid, bytes([i]) * 256)
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(bid) == bytes([9]) * 256


def test_recovery_after_delete_does_not_resurrect():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"ghost" * 100)
    lld.flush()
    lld.delete_block(bid, lid)
    lld.flush()
    recovered = reopen(lld)
    with pytest.raises(NoSuchBlockError):
        recovered.read(bid)
    assert recovered.list_blocks(lid) == []


def test_recovery_after_delete_list():
    lld = make_lld()
    lid = lld.new_list()
    bids = []
    prev = LIST_HEAD
    for _ in range(5):
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\x11" * 512)
        bids.append(bid)
        prev = bid
    lld.flush()
    lld.delete_list(lid)
    lld.flush()
    recovered = reopen(lld)
    with pytest.raises(NoSuchListError):
        recovered.list_blocks(lid)
    for bid in bids:
        assert bid not in recovered.state.blocks


def test_recovery_is_idempotent():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"stable")
    lld.flush()
    first = reopen(lld)
    second = reopen(first)
    assert second.read(bid) == b"stable"
    assert second.list_blocks(lid) == [bid]


def test_recovery_reads_only_summaries():
    """One-sweep recovery: read volume ~ summaries, not whole disk."""
    lld = make_lld()
    lid = lld.new_list()
    prev = LIST_HEAD
    for _ in range(60):
        bid = lld.new_block(lid, prev)
        lld.write(bid, b"\x77" * 4096)
        prev = bid
    lld.flush()
    lld.crash()
    from repro.lld import LLD

    fresh = LLD(lld.disk, lld.config)
    before = lld.disk.stats.snapshot()
    fresh.initialize()
    sectors_read = lld.disk.stats.sectors_read - before.sectors_read
    max_expected = (
        fresh.layout.segment_count * fresh.config.summary_sectors
        + fresh.layout.checkpoint_sectors
        + 8
    )
    assert sectors_read <= max_expected


def test_recovery_report_counts():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"x")
    lld.flush()
    recovered = reopen(lld)
    report = recovered.recovery_report
    assert report is not None
    assert report.records_applied >= 4  # meta, first, link, block
    assert report.records_discarded == 0
    assert report.simulated_seconds > 0
    assert "recovery" in str(report)


def test_recovery_survives_corrupted_summary():
    """A torn/corrupt summary is skipped, not fatal (checksum guard)."""
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"keep me")
    lld.flush()
    # Corrupt the summary of an unused slot and of a random high slot.
    victim = lld.layout.segment_count - 1
    lld.disk.corrupt(lld.layout.slot_lba(victim), 2)
    recovered = reopen(lld)
    assert recovered.read(bid) == b"keep me"


def test_next_ids_monotonic_after_recovery():
    lld = make_lld()
    lid = lld.new_list()
    bids = [lld.new_block(lid, LIST_HEAD) for _ in range(5)]
    lld.flush()
    recovered = reopen(lld)
    new_bid = recovered.new_block(lid, LIST_HEAD)
    assert new_bid not in bids
    new_lid = recovered.new_list()
    assert new_lid != lid


def test_compressed_blocks_survive_recovery():
    from repro.compress.data import compressible_bytes
    from repro.ld import ListHints

    lld = make_lld()
    lid = lld.new_list(hints=ListHints(compress=True))
    bid = lld.new_block(lid, LIST_HEAD)
    data = compressible_bytes(4096, ratio=0.6, seed=13)
    lld.write(bid, data)
    assert lld.state.blocks[bid].compressed
    lld.flush()
    recovered = reopen(lld)
    assert recovered.read(bid) == data


# ----------------------------------------------------------------------
# Coalesced summary sweep
# ----------------------------------------------------------------------


def test_sweep_issues_one_request_per_slot_on_wide_segments():
    """With 64 KB segments the inter-summary gap is too wide to bridge:
    the sweep stays one read request per slot."""
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"wide" * 100)
    lld.flush()
    recovered = reopen(lld)
    report = recovered.recovery_report
    assert report.summary_read_requests == report.segments_scanned


def test_sweep_coalesces_adjacent_summaries_on_narrow_segments():
    """With 8 KB segments the gap between summaries costs less to stream
    over than a fresh request, so the sweep spans many slots per read."""
    lld = make_lld(segment_size=8192, summary_capacity=512)
    lid = lld.new_list()
    bids = []
    pred = LIST_HEAD
    for i in range(6):
        bid = lld.new_block(lid, pred)
        lld.write(bid, bytes([i + 1]) * 2048)
        bids.append(bid)
        pred = bid
    lld.flush()
    recovered = reopen(lld)
    report = recovered.recovery_report
    assert report.segments_scanned > 8
    assert 0 < report.summary_read_requests < report.segments_scanned
    # Coalescing changes only the request count, never the result.
    for i, bid in enumerate(bids):
        assert recovered.read(bid) == bytes([i + 1]) * 2048


def test_coalesced_sweep_still_skips_damaged_summaries():
    lld = make_lld(segment_size=8192, summary_capacity=512)
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"keep me too")
    lld.flush()
    victim = lld.layout.segment_count - 1
    lld.disk.corrupt(lld.layout.slot_lba(victim), 1)
    recovered = reopen(lld)
    assert recovered.read(bid) == b"keep me too"


def test_coalesced_sweep_is_faster_than_per_slot():
    """The point of coalescing: fewer requests means less simulated time
    paid to per-request overhead and rotational delay."""
    from repro.lld import recovery as recovery_mod

    def timed_recovery(batch_override):
        lld = make_lld(segment_size=8192, summary_capacity=512)
        lid = lld.new_list()
        bid = lld.new_block(lid, LIST_HEAD)
        lld.write(bid, b"t" * 1024)
        lld.flush()
        if batch_override is not None:
            original = recovery_mod._sweep_batch_size
            recovery_mod._sweep_batch_size = lambda _lld: batch_override
            try:
                recovered = reopen(lld)
            finally:
                recovery_mod._sweep_batch_size = original
        else:
            recovered = reopen(lld)
        return recovered.recovery_report

    coalesced = timed_recovery(None)
    per_slot = timed_recovery(1)
    assert coalesced.summaries_valid == per_slot.summaries_valid
    assert coalesced.summary_read_requests < per_slot.summary_read_requests
    assert coalesced.simulated_seconds < per_slot.simulated_seconds
