"""Space accounting and reservation primitives (paper section 2.2)."""

import pytest

from repro.ld import LIST_HEAD
from repro.ld.errors import OutOfSpaceError, ReservationError

from tests.lld.conftest import make_lld


def test_reserve_and_consume():
    lld = make_lld()
    lid = lld.new_list()
    reservation = lld.reserve_blocks(3)
    assert reservation.blocks == 3
    for _ in range(3):
        bid = lld.new_block(lid, LIST_HEAD, reservation=reservation)
        lld.write(bid, b"\x01" * 4096)
    assert reservation.blocks == 0


def test_consume_beyond_reservation_rejected():
    lld = make_lld()
    lid = lld.new_list()
    reservation = lld.reserve_blocks(1)
    lld.new_block(lid, LIST_HEAD, reservation=reservation)
    with pytest.raises(ReservationError):
        lld.new_block(lid, LIST_HEAD, reservation=reservation)


def test_cancel_returns_space():
    lld = make_lld()
    before = lld._free_bytes()
    reservation = lld.reserve_blocks(10)
    assert lld._free_bytes() == before - 10 * lld.config.block_size
    lld.cancel_reservation(reservation)
    assert lld._free_bytes() == before


def test_cancel_unknown_reservation_rejected():
    lld = make_lld()
    reservation = lld.reserve_blocks(1)
    lld.cancel_reservation(reservation)
    with pytest.raises(ReservationError):
        lld.cancel_reservation(reservation)


def test_zero_reservation_rejected():
    lld = make_lld()
    with pytest.raises(ReservationError):
        lld.reserve_blocks(0)


def test_overlarge_reservation_rejected():
    lld = make_lld(capacity_mb=2)
    blocks = lld.layout.capacity_bytes // lld.config.block_size
    with pytest.raises(OutOfSpaceError):
        lld.reserve_blocks(blocks + 10)


def test_reservation_guards_against_later_writers():
    """The reservation's purpose: a write that was promised cannot fail."""
    lld = make_lld(capacity_mb=2)
    lid = lld.new_list()
    usable = lld._free_bytes()
    keep = 8
    reservation = lld.reserve_blocks(keep)
    # A greedy writer consumes everything that is left...
    prev = LIST_HEAD
    try:
        for _ in range(10000):
            bid = lld.new_block(lid, prev)
            lld.write(bid, b"\xaa" * 4096)
            prev = bid
    except OutOfSpaceError:
        pass
    # ...but the reserved blocks still succeed.
    for _ in range(keep):
        bid = lld.new_block(lid, LIST_HEAD, reservation=reservation)
        lld.write(bid, b"\xbb" * 4096)
        assert lld.read(bid) == b"\xbb" * 4096


def test_free_bytes_decrease_with_writes():
    lld = make_lld()
    lid = lld.new_list()
    before = lld._free_bytes()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x01" * 4096)
    assert lld._free_bytes() == before - 4096


def test_overwrite_does_not_leak_space():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x01" * 4096)
    after_first = lld._free_bytes()
    for _ in range(50):
        lld.write(bid, b"\x02" * 4096)
    assert lld._free_bytes() == after_first


def test_delete_returns_space():
    lld = make_lld()
    lid = lld.new_list()
    before = lld._free_bytes()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x03" * 4096)
    lld.delete_block(bid, lid)
    assert lld._free_bytes() == before
