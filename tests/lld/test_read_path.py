"""End-to-end tests for the vectored read path, read-ahead, and cache.

Equivalence is the anchor: ``read_blocks`` must match a loop of single
``read`` calls byte-for-byte in every configuration, while issuing fewer
disk requests whenever the requested blocks are physically contiguous.
The cache tests pin the invalidation contract: every mutation path that
changes a block's contents or location must drop the cached copy.
"""

import pytest

from repro.ld.hints import LIST_HEAD, ListHints
from tests.lld.conftest import make_lld, reopen


def payload(i: int) -> bytes:
    """Distinct, partially-filled block contents for block #i."""
    return bytes([0x41 + (i % 26)]) * (1000 + 137 * (i % 20))


def fill_to_seal(lld) -> None:
    """Burn rewrites on a scratch block until the open segment seals."""
    lid = lld.new_list()
    filler = lld.new_block(lid, LIST_HEAD)
    target = lld.stats.segments_sealed + 1
    while lld.stats.segments_sealed < target:
        lld.write(filler, b"\xaa" * 4096)
    lld.delete_block(filler, lid)
    lld.delete_list(lid)


def build_chain(lld, count: int, lid: int | None = None) -> tuple[int, list[int]]:
    """Write ``count`` blocks back-to-back on one list (physically contiguous)."""
    lid = lld.new_list() if lid is None else lid
    bids = []
    prev = LIST_HEAD
    for i in range(count):
        bid = lld.new_block(lid, prev)
        lld.write(bid, payload(i))
        bids.append(bid)
        prev = bid
    return lid, bids


# ----------------------------------------------------------------------
# Vectored equivalence and coalescing (default config: cache off)
# ----------------------------------------------------------------------


def test_read_blocks_equals_single_reads_on_fragmented_list():
    lld = make_lld()
    la, lb = lld.new_list(), lld.new_list()
    a_bids, b_bids = [], []
    prev_a, prev_b = LIST_HEAD, LIST_HEAD
    # Interleave so list A is fragmented into runs of 3, 2, and 3 blocks.
    for i, which in enumerate("aaabaabaaa"):
        if which == "a":
            bid = lld.new_block(la, prev_a)
            prev_a = bid
            a_bids.append(bid)
        else:
            bid = lld.new_block(lb, prev_b)
            prev_b = bid
            b_bids.append(bid)
        lld.write(bid, payload(i))
    fill_to_seal(lld)

    before = lld.disk.stats.reads
    singles = [lld.read(b) for b in a_bids]
    single_requests = lld.disk.stats.reads - before

    before = lld.disk.stats.reads
    vectored = lld.read_blocks(a_bids)
    vectored_requests = lld.disk.stats.reads - before

    assert vectored == singles
    assert single_requests == len(a_bids)
    assert vectored_requests < single_requests
    # Runs of 3 + 2 + 3 collapse to exactly three requests.
    assert vectored_requests == 3


def test_read_list_matches_concatenation_of_single_reads():
    lld = make_lld()
    lid, bids = build_chain(lld, 6)
    fill_to_seal(lld)
    assert lld.list_blocks(lid) == bids
    expected = [lld.read(b) for b in bids]
    assert lld.read_list(lid) == expected
    assert b"".join(lld.read_list(lid)) == b"".join(expected)


def test_read_blocks_handles_duplicates_empty_and_open_blocks():
    lld = make_lld()
    lid, bids = build_chain(lld, 3)
    empty = lld.new_block(lid, bids[-1])  # never written
    fill_to_seal(lld)
    fresh = lld.new_block(lid, empty)
    lld.write(fresh, b"still in the open segment")

    order = [bids[1], bids[1], empty, fresh, bids[0], bids[1]]
    expected = [lld.read(b) for b in order]
    assert lld.read_blocks(order) == expected
    assert expected[2] == b""
    assert expected[3] == b"still in the open segment"


def test_read_blocks_spanning_multiple_segments():
    lld = make_lld()
    lid, bids = build_chain(lld, 12)  # 48 KB of data: crosses 64 KB segments
    fill_to_seal(lld)
    assert lld.read_blocks(bids) == [lld.read(b) for b in bids]


def test_read_blocks_on_compressed_list():
    lld = make_lld()
    lid = lld.new_list(hints=ListHints(compress=True))
    _, bids = build_chain(lld, 5, lid=lid)
    fill_to_seal(lld)
    datas = lld.read_blocks(bids)
    assert datas == [lld.read(b) for b in bids]
    assert datas == [payload(i) for i in range(5)]


def test_coalesced_run_histogram_recorded():
    lld = make_lld()
    _, bids = build_chain(lld, 4)
    fill_to_seal(lld)
    lld.read_blocks(bids)
    assert lld.stats.vectored_reads == 1
    assert sum(lld.stats.coalesced_runs.values()) >= 1
    assert max(lld.stats.coalesced_runs) >= 2  # at least one multi-block run


# ----------------------------------------------------------------------
# Read cache: hits, bounds, equivalence
# ----------------------------------------------------------------------


def test_cache_disabled_by_default():
    lld = make_lld()
    assert lld.read_cache is None


def test_cache_serves_repeat_reads_without_disk_io():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=0)
    _, bids = build_chain(lld, 3)
    fill_to_seal(lld)
    first = [lld.read(b) for b in bids]
    before = lld.disk.stats.reads
    second = [lld.read(b) for b in bids]
    assert second == first
    assert lld.disk.stats.reads == before
    assert lld.stats.cache_hits >= len(bids)


def test_cache_stays_within_byte_bound():
    lld = make_lld(read_cache_enabled=True, read_cache_bytes=8192)
    _, bids = build_chain(lld, 10)
    fill_to_seal(lld)
    lld.read_blocks(bids)
    assert lld.read_cache is not None
    assert lld.read_cache.current_bytes <= 8192
    # And it still answers correctly despite evictions.
    assert lld.read_blocks(bids) == [payload(i) for i in range(10)]


def test_cache_on_and_off_agree_byte_for_byte():
    on = make_lld(read_cache_enabled=True)
    off = make_lld()
    _, bids_on = build_chain(on, 8)
    _, bids_off = build_chain(off, 8)
    fill_to_seal(on)
    fill_to_seal(off)
    order = [0, 3, 3, 7, 1, 0, 6, 2, 5, 4, 7, 0]
    got_on = [on.read(bids_on[i]) for i in order] + on.read_blocks(bids_on)
    got_off = [off.read(bids_off[i]) for i in order] + off.read_blocks(bids_off)
    assert got_on == got_off


# ----------------------------------------------------------------------
# Cache invalidation: every mutation path
# ----------------------------------------------------------------------


def test_overwrite_invalidates_cached_block():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=0)
    _, bids = build_chain(lld, 2)
    fill_to_seal(lld)
    bid = bids[0]
    assert lld.read(bid) == payload(0)
    assert bid in lld.read_cache
    lld.write(bid, b"rewritten")
    assert bid not in lld.read_cache
    assert lld.stats.cache_invalidations >= 1
    fill_to_seal(lld)
    assert lld.read(bid) == b"rewritten"


def test_delete_invalidates_cached_block():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=0)
    lid, bids = build_chain(lld, 2)
    fill_to_seal(lld)
    lld.read(bids[1])
    assert bids[1] in lld.read_cache
    lld.delete_block(bids[1], lid, pred_bid_hint=bids[0])
    assert bids[1] not in lld.read_cache


def test_swap_contents_invalidates_both_blocks():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=0)
    _, bids = build_chain(lld, 2)
    fill_to_seal(lld)
    a, b = bids
    assert lld.read(a) == payload(0)
    assert lld.read(b) == payload(1)
    lld.swap_contents(a, b)
    assert lld.read(a) == payload(1)
    assert lld.read(b) == payload(0)


def test_cleaning_invalidates_and_rereads_from_new_location():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=0)
    _, bids = build_chain(lld, 4)
    fill_to_seal(lld)
    bid = bids[0]
    assert lld.read(bid) == payload(0)
    assert bid in lld.read_cache
    entry = lld.state.block(bid)
    old_segment = entry.segment
    lba, nsectors, _skew = lld.layout.block_extent(
        old_segment, entry.offset, entry.stored_length
    )
    lld.cleaner.clean_segment(old_segment)
    # The move re-logged the block -> the cached copy must be gone.
    assert bid not in lld.read_cache
    assert lld.state.block(bid).segment != old_segment
    # Destroy the old physical location: a stale read would now return
    # garbage, so a correct answer proves the new location is used.
    lld.disk.corrupt(lba, nsectors)
    assert lld.read(bid) == payload(0)


def test_hot_reorganizer_invalidates_moved_blocks():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=0)
    _, bids = build_chain(lld, 6)
    fill_to_seal(lld)
    for _ in range(5):
        for b in bids[:3]:
            lld.read(b)  # make these hot (and cached)
    invalidations_before = lld.stats.cache_invalidations
    moved = lld.reorganize_hot(top_fraction=0.5)
    assert moved > 0
    assert lld.stats.cache_invalidations > invalidations_before
    assert [lld.read(b) for b in bids] == [payload(i) for i in range(6)]


def test_crash_recovery_starts_with_cold_cache():
    lld = make_lld(read_cache_enabled=True)
    _, bids = build_chain(lld, 4)
    fill_to_seal(lld)
    lld.flush()
    lld.read_blocks(bids)
    assert len(lld.read_cache) > 0
    fresh = reopen(lld, after_crash=True)
    assert fresh.read_cache is not None
    assert len(fresh.read_cache) == 0
    assert fresh.read_blocks(bids) == [payload(i) for i in range(4)]


# ----------------------------------------------------------------------
# Read-ahead along the successor chain
# ----------------------------------------------------------------------


def test_sequential_scan_prefetches_successors():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=8)
    _, bids = build_chain(lld, 8)
    fill_to_seal(lld)
    before = lld.disk.stats.reads
    assert lld.read(bids[0]) == payload(0)
    # One multi-sector request fetched the demand block and its run.
    assert lld.disk.stats.reads == before + 1
    assert lld.stats.prefetch_issued == 7
    for i, bid in enumerate(bids[1:], start=1):
        assert lld.read(bid) == payload(i)
    assert lld.disk.stats.reads == before + 1  # all served from cache
    assert lld.stats.prefetch_used == 7
    assert lld.stats.prefetch_wasted == 0


def test_read_ahead_stops_at_fragmentation_boundary():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=8)
    la, lb = lld.new_list(), lld.new_list()
    a1 = lld.new_block(la, LIST_HEAD)
    lld.write(a1, payload(0))
    b1 = lld.new_block(lb, LIST_HEAD)
    lld.write(b1, payload(1))  # physically between a1 and a2
    a2 = lld.new_block(la, a1)
    lld.write(a2, payload(2))
    fill_to_seal(lld)
    lld.read(a1)
    # a2 is a1's list successor but not physically adjacent: no prefetch.
    assert a2 not in lld.read_cache
    assert lld.read(a2) == payload(2)


def test_read_ahead_disabled_with_zero_blocks():
    lld = make_lld(read_cache_enabled=True, read_ahead_blocks=0)
    _, bids = build_chain(lld, 4)
    fill_to_seal(lld)
    lld.read(bids[0])
    assert lld.stats.prefetch_issued == 0
    assert all(b not in lld.read_cache for b in bids[1:])


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


def test_config_rejects_cache_without_capacity():
    with pytest.raises(Exception):
        make_lld(read_cache_enabled=True, read_cache_bytes=0)


def test_config_rejects_negative_read_ahead():
    with pytest.raises(Exception):
        make_lld(read_ahead_blocks=-1)
