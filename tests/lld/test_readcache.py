"""Unit tests for the LD-level read cache (LRU, byte bound, counters)."""

import pytest

from repro.lld.readcache import ReadCache, ReadCacheCounters


def test_hit_and_miss_counters():
    cache = ReadCache(1024)
    assert cache.get(1) is None
    cache.put(1, b"abc")
    assert cache.get(1) == b"abc"
    assert cache.counters.cache_misses == 1
    assert cache.counters.cache_hits == 1
    assert cache.counters.cache_inserts == 1


def test_empty_block_contents_are_cacheable():
    cache = ReadCache(16)
    cache.put(7, b"")
    # b"" is falsy but a perfectly valid cached value.
    assert cache.get(7) == b""
    assert 7 in cache


def test_lru_eviction_order():
    cache = ReadCache(3)
    cache.put(1, b"a")
    cache.put(2, b"b")
    cache.put(3, b"c")
    # Touch 1 so it becomes MRU; inserting 4 must evict 2 (the LRU).
    assert cache.get(1) == b"a"
    cache.put(4, b"d")
    assert 2 not in cache
    assert 1 in cache and 3 in cache and 4 in cache
    assert cache.counters.cache_evictions == 1


def test_byte_bound_is_strict():
    cache = ReadCache(10)
    cache.put(1, b"x" * 4)
    cache.put(2, b"y" * 4)
    cache.put(3, b"z" * 4)  # 12 bytes > 10: must evict down to the bound
    assert cache.current_bytes <= 10
    assert 1 not in cache
    assert cache.current_bytes == 8


def test_oversized_insert_rejected_without_thrash():
    cache = ReadCache(8)
    cache.put(1, b"a" * 8)
    assert cache.put(2, b"b" * 9) is False
    # The resident entry survives; nothing was evicted for a lost cause.
    assert 1 in cache
    assert cache.counters.cache_evictions == 0


def test_replacing_entry_adjusts_byte_accounting():
    cache = ReadCache(100)
    cache.put(1, b"a" * 60)
    cache.put(1, b"b" * 10)
    assert cache.current_bytes == 10
    assert cache.get(1) == b"b" * 10


def test_invalidate_removes_and_counts():
    cache = ReadCache(64)
    cache.put(1, b"abc")
    assert cache.invalidate(1) is True
    assert cache.invalidate(1) is False  # already gone
    assert 1 not in cache
    assert cache.get(1) is None
    assert cache.counters.cache_invalidations == 1
    assert cache.current_bytes == 0


def test_prefetch_lifecycle_used():
    cache = ReadCache(64)
    cache.put(1, b"abc", prefetched=True)
    assert cache.counters.prefetch_issued == 1
    assert cache.get(1) == b"abc"
    assert cache.counters.prefetch_used == 1
    # A second hit does not double-count "used".
    cache.get(1)
    assert cache.counters.prefetch_used == 1
    assert cache.counters.prefetch_wasted == 0


def test_prefetch_lifecycle_wasted_on_eviction_and_invalidation():
    cache = ReadCache(4)
    cache.put(1, b"aa", prefetched=True)
    cache.put(2, b"bb", prefetched=True)
    cache.put(3, b"cc")  # evicts 1, never read -> wasted
    assert cache.counters.prefetch_wasted == 1
    cache.invalidate(2)  # never read either -> wasted
    assert cache.counters.prefetch_wasted == 2
    assert cache.counters.prefetch_used == 0


def test_clear_drops_everything_without_counter_churn():
    cache = ReadCache(64)
    cache.put(1, b"a")
    cache.put(2, b"b", prefetched=True)
    before = (
        cache.counters.cache_evictions,
        cache.counters.cache_invalidations,
        cache.counters.prefetch_wasted,
    )
    cache.clear()
    assert len(cache) == 0
    assert cache.current_bytes == 0
    after = (
        cache.counters.cache_evictions,
        cache.counters.cache_invalidations,
        cache.counters.prefetch_wasted,
    )
    assert before == after


def test_contains_has_no_side_effects():
    cache = ReadCache(8)
    cache.put(1, b"a")
    cache.put(2, b"b")
    hits, misses = cache.counters.cache_hits, cache.counters.cache_misses
    assert 1 in cache
    assert 99 not in cache
    assert (cache.counters.cache_hits, cache.counters.cache_misses) == (hits, misses)
    # __contains__ must not refresh LRU: 1 is still the eviction victim.
    cache.put(3, b"c" * 7)
    assert 1 not in cache


def test_external_counter_sink():
    counters = ReadCacheCounters()
    cache = ReadCache(64, counters=counters)
    cache.put(1, b"a")
    cache.get(1)
    cache.get(2)
    assert counters.cache_inserts == 1
    assert counters.cache_hits == 1
    assert counters.cache_misses == 1


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ReadCache(-1)
