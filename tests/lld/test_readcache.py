"""Unit tests for the LD-level read cache (LRU, byte bound, counters)."""

import pytest

from repro.lld.readcache import ReadCache, ReadCacheCounters


def test_hit_and_miss_counters():
    cache = ReadCache(1024)
    assert cache.get(1) is None
    cache.put(1, b"abc")
    assert cache.get(1) == b"abc"
    assert cache.counters.cache_misses == 1
    assert cache.counters.cache_hits == 1
    assert cache.counters.cache_inserts == 1


def test_empty_block_contents_are_cacheable():
    cache = ReadCache(16)
    cache.put(7, b"")
    # b"" is falsy but a perfectly valid cached value.
    assert cache.get(7) == b""
    assert 7 in cache


def test_lru_eviction_order():
    cache = ReadCache(3)
    cache.put(1, b"a")
    cache.put(2, b"b")
    cache.put(3, b"c")
    # Touch 1 so it becomes MRU; inserting 4 must evict 2 (the LRU).
    assert cache.get(1) == b"a"
    cache.put(4, b"d")
    assert 2 not in cache
    assert 1 in cache and 3 in cache and 4 in cache
    assert cache.counters.cache_evictions == 1


def test_byte_bound_is_strict():
    cache = ReadCache(10)
    cache.put(1, b"x" * 4)
    cache.put(2, b"y" * 4)
    cache.put(3, b"z" * 4)  # 12 bytes > 10: must evict down to the bound
    assert cache.current_bytes <= 10
    assert 1 not in cache
    assert cache.current_bytes == 8


def test_oversized_insert_rejected_without_thrash():
    cache = ReadCache(8)
    cache.put(1, b"a" * 8)
    assert cache.put(2, b"b" * 9) is False
    # The resident entry survives; nothing was evicted for a lost cause.
    assert 1 in cache
    assert cache.counters.cache_evictions == 0


def test_replacing_entry_adjusts_byte_accounting():
    cache = ReadCache(100)
    cache.put(1, b"a" * 60)
    cache.put(1, b"b" * 10)
    assert cache.current_bytes == 10
    assert cache.get(1) == b"b" * 10


def test_invalidate_removes_and_counts():
    cache = ReadCache(64)
    cache.put(1, b"abc")
    assert cache.invalidate(1) is True
    assert cache.invalidate(1) is False  # already gone
    assert 1 not in cache
    assert cache.get(1) is None
    assert cache.counters.cache_invalidations == 1
    assert cache.current_bytes == 0


def test_prefetch_lifecycle_used():
    cache = ReadCache(64)
    cache.put(1, b"abc", prefetched=True)
    assert cache.counters.prefetch_issued == 1
    assert cache.get(1) == b"abc"
    assert cache.counters.prefetch_used == 1
    # A second hit does not double-count "used".
    cache.get(1)
    assert cache.counters.prefetch_used == 1
    assert cache.counters.prefetch_wasted == 0


def test_prefetch_lifecycle_wasted_on_eviction_and_invalidation():
    cache = ReadCache(4)
    cache.put(1, b"aa", prefetched=True)
    cache.put(2, b"bb", prefetched=True)
    cache.put(3, b"cc")  # evicts 1, never read -> wasted
    assert cache.counters.prefetch_wasted == 1
    cache.invalidate(2)  # never read either -> wasted
    assert cache.counters.prefetch_wasted == 2
    assert cache.counters.prefetch_used == 0


def test_clear_drops_everything_without_counter_churn():
    cache = ReadCache(64)
    cache.put(1, b"a")
    cache.put(2, b"b", prefetched=True)
    before = (
        cache.counters.cache_evictions,
        cache.counters.cache_invalidations,
        cache.counters.prefetch_wasted,
    )
    cache.clear()
    assert len(cache) == 0
    assert cache.current_bytes == 0
    after = (
        cache.counters.cache_evictions,
        cache.counters.cache_invalidations,
        cache.counters.prefetch_wasted,
    )
    assert before == after


def test_contains_has_no_side_effects():
    cache = ReadCache(8)
    cache.put(1, b"a")
    cache.put(2, b"b")
    hits, misses = cache.counters.cache_hits, cache.counters.cache_misses
    assert 1 in cache
    assert 99 not in cache
    assert (cache.counters.cache_hits, cache.counters.cache_misses) == (hits, misses)
    # __contains__ must not refresh LRU: 1 is still the eviction victim.
    cache.put(3, b"c" * 7)
    assert 1 not in cache


def test_external_counter_sink():
    counters = ReadCacheCounters()
    cache = ReadCache(64, counters=counters)
    cache.put(1, b"a")
    cache.get(1)
    cache.get(2)
    assert counters.cache_inserts == 1
    assert counters.cache_hits == 1
    assert counters.cache_misses == 1


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ReadCache(-1)


# ----------------------------------------------------------------------
# Crash correctness: the cache is volatile and must never leak stale
# pre-crash bytes into a recovered instance.
# ----------------------------------------------------------------------


from tests.lld.conftest import make_lld, reopen


def build_sealed_cached_lld(n_blocks=12):
    """A cached LLD whose blocks live in a sealed segment (so reads go
    through the disk + cache path, not the in-memory open segment)."""
    lld = make_lld(read_cache_enabled=True, read_cache_bytes=256 * 1024)
    lid = lld.new_list()
    bids = []
    pred = -1
    for i in range(n_blocks):
        bid = lld.new_block(lid, pred)
        lld.write(bid, bytes([i + 1]) * 4096)
        bids.append(bid)
        pred = bid
    lld.flush()
    assert lld.stats.segments_sealed >= 1
    return lld, lid, bids


def test_crash_clears_the_cache():
    lld, _lid, bids = build_sealed_cached_lld()
    lld.read(bids[0])  # populate the cache from the sealed segment
    assert lld.read_cache.current_bytes > 0
    lld.crash()
    assert lld.read_cache.current_bytes == 0


def test_recovered_instance_starts_cold_and_serves_acked_content():
    lld, _lid, bids = build_sealed_cached_lld()
    for bid in bids:
        lld.read(bid)  # warm the pre-crash cache
    fresh = reopen(lld)
    assert fresh.read_cache is not None
    assert fresh.read_cache.current_bytes == 0
    misses_before = fresh.read_cache.counters.cache_misses
    for i, bid in enumerate(bids):
        assert fresh.read(bid) == bytes([i + 1]) * 4096
    assert fresh.read_cache.counters.cache_misses > misses_before


def test_recovery_never_serves_unflushed_overwrite_from_cache():
    """An overwrite that was cached but never flushed must revert to the
    acknowledged version after a crash — the cache cannot resurrect it."""
    lld, _lid, bids = build_sealed_cached_lld()
    victim = bids[0]
    acked = bytes([1]) * 4096
    assert lld.read(victim) == acked  # cached now
    unflushed = b"version-two" * 150
    lld.write(victim, unflushed)
    # The write path must already have invalidated/updated the cache so
    # the live instance serves the new version...
    assert lld.read(victim) == unflushed
    # ...but after a crash, only the flushed version exists.
    fresh = reopen(lld)
    assert fresh.read(victim) == acked


def test_recovered_read_ahead_stages_only_durable_bytes():
    """Read-ahead in the recovered instance prefetches from the recovered
    log, so list successors come back with their acknowledged contents."""
    lld, _lid, bids = build_sealed_cached_lld()
    for bid in bids:
        lld.read(bid)  # warm the pre-crash cache
    fresh = reopen(lld)
    assert fresh.read(bids[0]) == bytes([1]) * 4096
    # Whatever read-ahead staged must match the durable contents.
    for i, bid in enumerate(bids):
        assert fresh.read(bid) == bytes([i + 1]) * 4096
