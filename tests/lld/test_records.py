"""Round-trip tests for segment-summary records."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lld.records import (
    FLAG_CLEANER,
    FLAG_COMPRESSED,
    BlockDeadRecord,
    BlockRecord,
    CommitRecord,
    LinkRecord,
    ListDeadRecord,
    ListFirstRecord,
    ListMetaRecord,
    unpack_record,
)

ids = st.integers(min_value=0, max_value=0xFFFFFFFE)
opt_ids = st.one_of(st.none(), ids)
timestamps = st.integers(min_value=0, max_value=2**60)


def roundtrip(record):
    packed = record.pack()
    assert len(packed) == record.packed_size
    out, consumed = unpack_record(packed, 0)
    assert consumed == len(packed)
    return out


@given(ids, opt_ids, timestamps)
def test_link_roundtrip(bid, succ, ts):
    rec = LinkRecord(bid=bid, successor=succ)
    rec.timestamp = ts
    out = roundtrip(rec)
    assert (out.bid, out.successor, out.timestamp) == (bid, succ, ts)


@given(ids, ids, st.integers(min_value=0, max_value=2**20), timestamps)
def test_block_roundtrip(bid, seg, offset, ts):
    rec = BlockRecord(bid=bid, segment=seg, offset=offset, stored_length=100, length=200)
    rec.timestamp = ts
    rec.flags = FLAG_COMPRESSED
    out = roundtrip(rec)
    assert out.bid == bid
    assert out.segment == seg
    assert out.offset == offset
    assert out.stored_length == 100
    assert out.length == 200
    assert out.compressed


def test_block_flags():
    rec = BlockRecord(bid=1)
    assert not rec.compressed
    rec.flags = FLAG_COMPRESSED | FLAG_CLEANER
    assert rec.compressed


@given(ids, timestamps, timestamps)
def test_block_dead_roundtrip(bid, death, ts):
    rec = BlockDeadRecord(bid=bid, death_timestamp=death)
    rec.timestamp = ts
    out = roundtrip(rec)
    assert (out.bid, out.death_timestamp, out.timestamp) == (bid, death, ts)


@given(ids, opt_ids)
def test_list_first_roundtrip(lid, first):
    out = roundtrip(ListFirstRecord(lid=lid, first=first))
    assert (out.lid, out.first) == (lid, first)


@given(ids, st.integers(min_value=0, max_value=7))
def test_list_meta_roundtrip(lid, hints):
    out = roundtrip(ListMetaRecord(lid=lid, hints=hints))
    assert (out.lid, out.hints) == (lid, hints)


@given(ids, timestamps)
def test_list_dead_roundtrip(lid, death):
    out = roundtrip(ListDeadRecord(lid=lid, death_timestamp=death))
    assert (out.lid, out.death_timestamp) == (lid, death)


def test_commit_roundtrip():
    rec = CommitRecord()
    rec.aru = 42
    out = roundtrip(rec)
    assert isinstance(out, CommitRecord)
    assert out.aru == 42


def test_unpack_truncated_header():
    with pytest.raises(ValueError):
        unpack_record(b"\x01\x00", 0)


def test_unpack_truncated_payload():
    packed = LinkRecord(bid=1, successor=2).pack()
    with pytest.raises(ValueError):
        unpack_record(packed[:-2], 0)


def test_unpack_unknown_type():
    bogus = bytes([99]) + LinkRecord(bid=1).pack()[1:]
    with pytest.raises(ValueError):
        unpack_record(bogus, 0)


def test_unpack_sequence():
    records = [LinkRecord(bid=i, successor=i + 1) for i in range(5)]
    buf = b"".join(r.pack() for r in records)
    offset = 0
    for expected in records:
        record, offset = unpack_record(buf, offset)
        assert record.bid == expected.bid
    assert offset == len(buf)
