"""Property-based round-trip tests for the segment-summary wire format.

Two contracts, checked with seeded (derandomized) hypothesis runs:

* encode -> decode is the identity for every record type over its full
  field domain — both record-at-a-time (``pack``/``unpack_record``) and
  through the summary container (``serialize_summary``/``parse_summary``).
* decoding adversarial bytes — truncations, bit flips, garbage — never
  raises out of ``parse_summary``; it degrades to ``None`` (skip the
  segment), which is what one-sweep recovery relies on after a torn or
  interrupted summary write.
"""

import struct
import zlib

from hypothesis import given, settings, strategies as st

from repro.lld.records import (
    NONE_ID,
    BlockDeadRecord,
    BlockRecord,
    CommitRecord,
    LinkRecord,
    ListDeadRecord,
    ListFirstRecord,
    ListMetaRecord,
    unpack_record,
)
from repro.lld.segment import SUMMARY_MAGIC, parse_summary, serialize_summary

U8 = st.integers(min_value=0, max_value=0xFF)
U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
U64 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF)
# Id fields encode None as NONE_ID, so the domain excludes the sentinel.
IDS = st.integers(min_value=0, max_value=0xFFFFFFFE)
OPT_IDS = st.one_of(st.none(), IDS)
HEADER_FIELDS = {"timestamp": U64, "aru": U32, "flags": U8}

RECORDS = st.one_of(
    st.builds(LinkRecord, bid=IDS, successor=OPT_IDS, **HEADER_FIELDS),
    st.builds(
        BlockRecord,
        bid=IDS,
        segment=U32,
        offset=U32,
        stored_length=U32,
        length=U32,
        **HEADER_FIELDS,
    ),
    st.builds(BlockDeadRecord, bid=IDS, death_timestamp=U64, **HEADER_FIELDS),
    st.builds(ListFirstRecord, lid=IDS, first=OPT_IDS, **HEADER_FIELDS),
    st.builds(ListMetaRecord, lid=IDS, hints=U8, **HEADER_FIELDS),
    st.builds(ListDeadRecord, lid=IDS, death_timestamp=U64, **HEADER_FIELDS),
    st.builds(CommitRecord, **HEADER_FIELDS),
)

CAPACITY = 4096


@settings(derandomize=True, max_examples=200)
@given(record=RECORDS)
def test_single_record_round_trip(record):
    buf = record.pack()
    assert len(buf) == record.packed_size
    decoded, end = unpack_record(buf, 0)
    assert end == len(buf)
    assert decoded == record


@settings(derandomize=True, max_examples=100)
@given(records=st.lists(RECORDS, max_size=40))
def test_summary_round_trip(records):
    image = serialize_summary(records, CAPACITY)
    assert len(image) == CAPACITY
    assert parse_summary(image) == records


@settings(derandomize=True, max_examples=100)
@given(records=st.lists(RECORDS, max_size=40), cut=st.integers(min_value=0))
def test_truncated_summary_never_raises(records, cut):
    image = serialize_summary(records, CAPACITY)
    truncated = image[: cut % len(image)]
    result = parse_summary(truncated)
    assert result is None or result == records


@settings(derandomize=True, max_examples=150)
@given(
    records=st.lists(RECORDS, min_size=1, max_size=40),
    position=st.integers(min_value=0),
    bit=st.integers(min_value=0, max_value=7),
)
def test_bit_flipped_summary_never_raises(records, position, bit):
    image = bytearray(serialize_summary(records, CAPACITY))
    position %= len(image)
    image[position] ^= 1 << bit
    result = parse_summary(bytes(image))
    # A flip in the zero padding past the body is invisible; any flip in
    # the header or body must be rejected, never propagate an exception.
    assert result is None or result == records


@settings(derandomize=True, max_examples=100)
@given(garbage=st.binary(max_size=2 * CAPACITY))
def test_garbage_summary_never_raises(garbage):
    assert parse_summary(garbage) is None or isinstance(parse_summary(garbage), list)


@settings(derandomize=True, max_examples=100)
@given(
    records=st.lists(RECORDS, min_size=1, max_size=10),
    rtype=st.integers(min_value=8, max_value=255),
)
def test_crc_valid_body_with_unknown_type_degrades_to_skip(records, rtype):
    """A CRC-consistent body whose records don't parse must yield None.

    This models a format-version skew (or a torn write that happened to
    keep the checksum valid): the sweep must skip the segment, not die.
    """
    body = b"".join(r.pack() for r in records)
    # Corrupt the first record's type byte, then re-checksum so the CRC
    # gate passes and the failure happens inside record parsing.
    body = bytes([rtype]) + body[1:]
    header = struct.Struct("<4sIII").pack(
        SUMMARY_MAGIC, len(records), len(body), zlib.crc32(body)
    )
    image = (header + body).ljust(CAPACITY, b"\x00")
    assert parse_summary(image) is None
