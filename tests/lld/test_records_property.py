"""Property-based round-trip tests for the segment-summary wire format.

Two contracts, checked with seeded (derandomized) hypothesis runs:

* encode -> decode is the identity for every record type over its full
  field domain — both record-at-a-time (``pack``/``unpack_record``) and
  through the summary container (``serialize_summary``/``parse_summary``).
* decoding adversarial bytes — truncations, bit flips, garbage — never
  raises out of ``parse_summary``; it degrades to ``None`` (skip the
  segment), which is what one-sweep recovery relies on after a torn or
  interrupted summary write.
* the two codec generations are equivalent: the batch ``pack_into``
  encoders produce byte-identical output to the per-entry reference
  ``pack``, and the batch and legacy summary parsers agree on every
  input — valid, truncated, torn (spliced across two summaries), bit-
  flipped, or garbage. The legacy implementations are the oracle that
  pins the on-disk format across the CPU optimization pass.
"""

import struct
import zlib

from hypothesis import given, settings, strategies as st

from repro.lld.records import (
    NONE_ID,
    BlockDeadRecord,
    BlockRecord,
    CommitRecord,
    LinkRecord,
    ListDeadRecord,
    ListFirstRecord,
    ListMetaRecord,
    unpack_record,
)
from repro.lld.segment import (
    SUMMARY_MAGIC,
    parse_summary,
    parse_summary_legacy,
    serialize_summary,
    serialize_summary_legacy,
)

U8 = st.integers(min_value=0, max_value=0xFF)
U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
U64 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF)
# Id fields encode None as NONE_ID, so the domain excludes the sentinel.
IDS = st.integers(min_value=0, max_value=0xFFFFFFFE)
OPT_IDS = st.one_of(st.none(), IDS)
HEADER_FIELDS = {"timestamp": U64, "aru": U32, "flags": U8}

RECORDS = st.one_of(
    st.builds(LinkRecord, bid=IDS, successor=OPT_IDS, **HEADER_FIELDS),
    st.builds(
        BlockRecord,
        bid=IDS,
        segment=U32,
        offset=U32,
        stored_length=U32,
        length=U32,
        **HEADER_FIELDS,
    ),
    st.builds(BlockDeadRecord, bid=IDS, death_timestamp=U64, **HEADER_FIELDS),
    st.builds(ListFirstRecord, lid=IDS, first=OPT_IDS, **HEADER_FIELDS),
    st.builds(ListMetaRecord, lid=IDS, hints=U8, **HEADER_FIELDS),
    st.builds(ListDeadRecord, lid=IDS, death_timestamp=U64, **HEADER_FIELDS),
    st.builds(CommitRecord, **HEADER_FIELDS),
)

CAPACITY = 4096


@settings(derandomize=True, max_examples=200)
@given(record=RECORDS)
def test_single_record_round_trip(record):
    buf = record.pack()
    assert len(buf) == record.packed_size
    decoded, end = unpack_record(buf, 0)
    assert end == len(buf)
    assert decoded == record


@settings(derandomize=True, max_examples=100)
@given(records=st.lists(RECORDS, max_size=40))
def test_summary_round_trip(records):
    image = serialize_summary(records, CAPACITY)
    assert len(image) == CAPACITY
    assert parse_summary(image) == records


@settings(derandomize=True, max_examples=100)
@given(records=st.lists(RECORDS, max_size=40), cut=st.integers(min_value=0))
def test_truncated_summary_never_raises(records, cut):
    image = serialize_summary(records, CAPACITY)
    truncated = image[: cut % len(image)]
    result = parse_summary(truncated)
    assert result is None or result == records


@settings(derandomize=True, max_examples=150)
@given(
    records=st.lists(RECORDS, min_size=1, max_size=40),
    position=st.integers(min_value=0),
    bit=st.integers(min_value=0, max_value=7),
)
def test_bit_flipped_summary_never_raises(records, position, bit):
    image = bytearray(serialize_summary(records, CAPACITY))
    position %= len(image)
    image[position] ^= 1 << bit
    result = parse_summary(bytes(image))
    # A flip in the zero padding past the body is invisible; any flip in
    # the header or body must be rejected, never propagate an exception.
    assert result is None or result == records


@settings(derandomize=True, max_examples=100)
@given(garbage=st.binary(max_size=2 * CAPACITY))
def test_garbage_summary_never_raises(garbage):
    assert parse_summary(garbage) is None or isinstance(parse_summary(garbage), list)


@settings(derandomize=True, max_examples=100)
@given(
    records=st.lists(RECORDS, min_size=1, max_size=10),
    rtype=st.integers(min_value=8, max_value=255),
)
def test_crc_valid_body_with_unknown_type_degrades_to_skip(records, rtype):
    """A CRC-consistent body whose records don't parse must yield None.

    This models a format-version skew (or a torn write that happened to
    keep the checksum valid): the sweep must skip the segment, not die.
    """
    body = b"".join(r.pack() for r in records)
    # Corrupt the first record's type byte, then re-checksum so the CRC
    # gate passes and the failure happens inside record parsing.
    body = bytes([rtype]) + body[1:]
    header = struct.Struct("<4sIII").pack(
        SUMMARY_MAGIC, len(records), len(body), zlib.crc32(body)
    )
    image = (header + body).ljust(CAPACITY, b"\x00")
    assert parse_summary(image) is None


# ----------------------------------------------------------------------
# Old-vs-new codec equivalence (the batch pack_into generation must be
# byte-identical to the per-entry reference it replaced)
# ----------------------------------------------------------------------


@settings(derandomize=True, max_examples=200)
@given(record=RECORDS)
def test_pack_into_byte_identical_to_pack(record):
    buf = bytearray(record.SIZE)
    end = record.pack_into(buf, 0)
    assert end == record.SIZE == record.packed_size
    assert bytes(buf) == record.pack()


@settings(derandomize=True, max_examples=100)
@given(records=st.lists(RECORDS, max_size=40))
def test_batch_summary_byte_identical_to_legacy(records):
    assert serialize_summary(records, CAPACITY) == serialize_summary_legacy(
        records, CAPACITY
    )


def test_summary_overflow_identical_to_legacy():
    from repro.lld.records import BlockRecord as BR
    import pytest

    records = [BR(bid=i) for i in range(1000)]
    with pytest.raises(ValueError) as batch_err:
        serialize_summary(records, CAPACITY)
    with pytest.raises(ValueError) as legacy_err:
        serialize_summary_legacy(records, CAPACITY)
    assert str(batch_err.value) == str(legacy_err.value)


@settings(derandomize=True, max_examples=100)
@given(records=st.lists(RECORDS, max_size=40))
def test_parsers_agree_on_valid_summaries(records):
    image = serialize_summary(records, CAPACITY)
    assert parse_summary(image) == parse_summary_legacy(image) == records
    # A memoryview (recovery's zero-copy sweep input) decodes identically.
    assert parse_summary(memoryview(image)) == records


@settings(derandomize=True, max_examples=100)
@given(records=st.lists(RECORDS, max_size=40), cut=st.integers(min_value=0))
def test_parsers_agree_on_truncated_summaries(records, cut):
    image = serialize_summary(records, CAPACITY)
    truncated = image[: cut % len(image)]
    assert parse_summary(truncated) == parse_summary_legacy(truncated)


@settings(derandomize=True, max_examples=100)
@given(
    old=st.lists(RECORDS, min_size=1, max_size=40),
    new=st.lists(RECORDS, min_size=1, max_size=40),
    tear=st.integers(min_value=1),
)
def test_parsers_agree_on_torn_summaries(old, new, tear):
    """A torn write — new summary's prefix over the old one's suffix.

    This is the crash shape torn_write_protection exists for; whatever
    verdict the parser reaches (usually reject, occasionally a consistent
    read of one generation), both generations must reach the same one and
    neither may raise.
    """
    old_image = serialize_summary(old, CAPACITY)
    new_image = serialize_summary(new, CAPACITY)
    torn = new_image[: tear % CAPACITY] + old_image[tear % CAPACITY :]
    assert parse_summary(torn) == parse_summary_legacy(torn)


@settings(derandomize=True, max_examples=150)
@given(
    records=st.lists(RECORDS, min_size=1, max_size=40),
    position=st.integers(min_value=0),
    bit=st.integers(min_value=0, max_value=7),
)
def test_parsers_agree_on_bit_flips(records, position, bit):
    image = bytearray(serialize_summary(records, CAPACITY))
    image[position % len(image)] ^= 1 << bit
    flipped = bytes(image)
    assert parse_summary(flipped) == parse_summary_legacy(flipped)


@settings(derandomize=True, max_examples=100)
@given(garbage=st.binary(max_size=2 * CAPACITY))
def test_parsers_agree_on_garbage(garbage):
    assert parse_summary(garbage) == parse_summary_legacy(garbage)
