"""Idle-time reorganizer tests."""

import pytest

from repro.ld import LIST_HEAD, ListHints
from repro.ld.errors import ARUError

from tests.lld.conftest import make_lld, reopen


def interleave_two_lists(lld, count=12):
    l1 = lld.new_list()
    l2 = lld.new_list()
    p1, p2 = LIST_HEAD, LIST_HEAD
    b1, b2 = [], []
    for i in range(count):
        a = lld.new_block(l1, p1)
        lld.write(a, bytes([1]) * 4096)
        b1.append(a)
        p1 = a
        b = lld.new_block(l2, p2)
        lld.write(b, bytes([2]) * 4096)
        b2.append(b)
        p2 = b
    return l1, l2, b1, b2


def test_reorganize_preserves_content():
    lld = make_lld()
    l1, l2, b1, b2 = interleave_two_lists(lld)
    moved = lld.reorganize()
    assert moved == len(b1) + len(b2)
    for bid in b1:
        assert lld.read(bid) == bytes([1]) * 4096
    for bid in b2:
        assert lld.read(bid) == bytes([2]) * 4096
    assert lld.list_blocks(l1) == b1
    assert lld.list_blocks(l2) == b2


def test_reorganize_improves_physical_contiguity():
    lld = make_lld()
    l1, _l2, b1, _b2 = interleave_two_lists(lld)

    def gaps(bids):
        locs = []
        for bid in bids:
            entry = lld.state.blocks[bid]
            locs.append(entry.segment * lld.config.segment_size + entry.offset)
        return sum(
            1
            for prev, cur in zip(locs, locs[1:])
            if cur - prev != lld.state.blocks[bids[0]].stored_length
        )

    before = gaps(b1)
    lld.reorganize()
    after = gaps(b1)
    assert after <= before
    # After reorganization the list is laid out back-to-back.
    assert after <= 1


def test_reorganize_survives_recovery():
    lld = make_lld()
    l1, l2, b1, b2 = interleave_two_lists(lld)
    lld.reorganize()
    lld.flush()
    recovered = reopen(lld)
    assert recovered.list_blocks(l1) == b1
    for bid in b1:
        assert recovered.read(bid) == bytes([1]) * 4096


def test_reorganize_respects_max_blocks():
    lld = make_lld()
    interleave_two_lists(lld)
    moved = lld.reorganize(max_blocks=5)
    assert moved == 5


def test_reorganize_skips_noncluster_lists():
    lld = make_lld()
    lid = lld.new_list(hints=ListHints(cluster=False))
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"\x01" * 1024)
    assert lld.reorganize() == 0


def test_reorganize_inside_aru_rejected():
    lld = make_lld()
    lld.begin_aru()
    with pytest.raises(ARUError):
        lld.reorganize()


def test_sequential_read_faster_after_reorganize():
    """The point of clustering: list-order reads cost less after reorg."""
    from repro.lld import LLD

    def read_time(do_reorg):
        lld = make_lld()
        l1, _l2, b1, _b2 = interleave_two_lists(lld, count=30)
        if do_reorg:
            lld.reorganize()
        lld.flush()
        # Reopen so reads are not served from the open segment.
        fresh = reopen(lld, after_crash=False)
        t0 = fresh.disk.clock.now
        for bid in b1:
            fresh.read(bid)
        return fresh.disk.clock.now - t0

    assert read_time(True) <= read_time(False) * 1.05
