"""Tests for segment summaries, layout math, and the open segment buffer."""

import pytest

from repro.disk import SimulatedDisk, fast_test_disk
from repro.lld.config import LLDConfig
from repro.lld.records import BlockRecord, LinkRecord
from repro.lld.segment import (
    DiskLayout,
    LegacyOpenSegment,
    OpenSegment,
    empty_summary,
    parse_summary,
    serialize_summary,
)
from repro.sim import VirtualClock


def config():
    return LLDConfig(
        segment_size=64 * 1024,
        summary_capacity=4096,
        block_size=4096,
        checkpoint_slots=1,
    )


def test_serialize_parse_empty():
    image = serialize_summary([], 4096)
    assert len(image) == 4096
    assert parse_summary(image) == []


def test_serialize_parse_records():
    records = [LinkRecord(bid=i, successor=i + 1) for i in range(10)]
    for i, r in enumerate(records):
        r.timestamp = i + 1
    parsed = parse_summary(serialize_summary(records, 4096))
    assert parsed is not None
    assert [r.bid for r in parsed] == list(range(10))
    assert [r.timestamp for r in parsed] == list(range(1, 11))


def test_parse_rejects_garbage():
    assert parse_summary(b"\x00" * 4096) is None
    assert parse_summary(b"junk" + b"\x01" * 100) is None
    assert parse_summary(b"") is None


def test_parse_rejects_corrupted_body():
    image = bytearray(serialize_summary([LinkRecord(bid=7)], 4096))
    image[20] ^= 0xFF  # flip a bit inside the body
    assert parse_summary(bytes(image)) is None


def test_serialize_overflow_raises():
    records = [BlockRecord(bid=i) for i in range(1000)]
    with pytest.raises(ValueError):
        serialize_summary(records, 4096)


def test_layout_segment_count():
    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    layout = DiskLayout(disk, config())
    # 4 MB disk, 64 KB segments, 1 checkpoint slot -> about 62 slots.
    assert 55 <= layout.segment_count <= 63


def test_layout_slot_lba_monotonic():
    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    layout = DiskLayout(disk, config())
    lbas = [layout.slot_lba(i) for i in range(layout.segment_count)]
    assert lbas == sorted(lbas)
    assert lbas[0] == layout.checkpoint_sectors


def test_layout_rejects_tiny_disk():
    disk = SimulatedDisk(fast_test_disk(capacity_mb=16), VirtualClock())
    big = LLDConfig(segment_size=8 * 1024 * 1024, summary_capacity=4096, checkpoint_slots=1)
    with pytest.raises(ValueError):
        DiskLayout(disk, big)


def test_block_extent_sector_math():
    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    layout = DiskLayout(disk, config())
    lba, nsectors, skew = layout.block_extent(0, 0, 4096)
    assert skew == 0
    assert nsectors == 8
    assert lba == layout.slot_lba(0) + config().summary_sectors


def test_block_extent_misaligned_small_block():
    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    layout = DiskLayout(disk, config())
    # A 64-byte i-node at offset 100 still costs a whole sector.
    lba, nsectors, skew = layout.block_extent(0, 100, 64)
    assert nsectors == 1
    assert skew == 100


def test_open_segment_append_and_read():
    seg = OpenSegment(3, config())
    offset = seg.append_data(b"abc" * 100)
    assert offset == 0
    assert seg.read_data(0, 300) == b"abc" * 100
    second = seg.append_data(b"x" * 10)
    assert second == 300
    assert seg.used == 310


def test_open_segment_fill_fraction():
    cfg = config()
    seg = OpenSegment(0, cfg)
    seg.append_data(b"\x01" * (cfg.data_capacity // 2))
    assert seg.fill_fraction == pytest.approx(0.5)


def test_open_segment_data_overflow():
    cfg = config()
    seg = OpenSegment(0, cfg)
    with pytest.raises(ValueError):
        seg.append_data(b"\x01" * (cfg.data_capacity + 1))


def test_open_segment_summary_overflow():
    cfg = config()
    seg = OpenSegment(0, cfg)
    record = LinkRecord(bid=1)
    while seg.fits(0, record.packed_size):
        seg.append_record(LinkRecord(bid=1))
    with pytest.raises(ValueError):
        seg.append_record(LinkRecord(bid=1))


def test_open_segment_image_roundtrips_summary():
    cfg = config()
    seg = OpenSegment(0, cfg)
    rec = LinkRecord(bid=5, successor=None)
    rec.timestamp = 9
    seg.append_record(rec)
    seg.append_data(b"payload!" * 64)
    image = seg.image()
    assert len(image) % 512 == 0
    parsed = parse_summary(image[: cfg.summary_capacity])
    assert parsed is not None and parsed[0].bid == 5


def test_min_timestamp():
    seg = OpenSegment(0, config())
    assert seg.min_timestamp() is None
    for ts in (7, 3, 9):
        rec = LinkRecord(bid=1)
        rec.timestamp = ts
        seg.append_record(rec)
    assert seg.min_timestamp() == 3


def test_empty_summary_cached_and_identical():
    image = empty_summary(4096)
    assert image is empty_summary(4096)  # cached template
    assert image == serialize_summary([], 4096)
    assert parse_summary(image) == []


def _fill(seg, with_second_round: bool = True):
    """Identical append sequence for cross-implementation comparisons."""
    for i, ts in enumerate((5, 2, 8)):
        rec = LinkRecord(bid=i, successor=i + 1)
        rec.timestamp = ts
        seg.append_record(rec)
    seg.append_data(b"abcdefgh" * 100)
    seg.mark_durable()
    if with_second_round:
        rec = BlockRecord(bid=9, segment=seg.index, offset=800, stored_length=64)
        rec.timestamp = 11
        seg.append_record(rec)
        seg.append_data(b"Z" * 64)


def test_open_segment_matches_legacy_byte_for_byte():
    cfg = config()
    seg, leg = OpenSegment(3, cfg), LegacyOpenSegment(3, cfg)
    _fill(seg)
    _fill(leg)
    assert bytes(seg.image()) == bytes(leg.image())
    assert bytes(seg.summary_delta_image()) == bytes(leg.summary_delta_image())
    sector, tail = seg.data_tail()
    legacy_sector, legacy_tail = leg.data_tail()
    assert sector == legacy_sector
    assert bytes(tail) == bytes(legacy_tail)
    assert seg.min_timestamp() == leg.min_timestamp() == 2


def test_open_segment_zero_copy_counter():
    """The optimized flush images are views: zero intermediate copies."""
    cfg = config()
    seg, leg = OpenSegment(0, cfg), LegacyOpenSegment(0, cfg)
    for s in (seg, leg):
        _fill(s)
        s.image()
        s.summary_delta_image()
        s.data_tail()
    assert seg.bytes_copied == 0
    assert leg.bytes_copied > 0


def test_lld_partial_flush_is_zero_copy():
    """End to end: delta partial flushes copy no intermediate bytes."""
    from repro.lld.lld import LLD

    def run(legacy: bool):
        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        lld = LLD(disk, LLDConfig(segment_size=64 * 1024,
                                  checkpoint_slots=1,
                                  legacy_codecs=legacy))
        lld.initialize()
        from repro.ld.hints import LIST_HEAD

        lid = lld.new_list()
        prev = LIST_HEAD
        for i in range(8):
            bid = lld.new_block(lid, prev)
            prev = bid
            lld.write(bid, bytes([i + 1]) * 1024)
            lld.flush()
        return lld

    assert run(legacy=False).stats.segment_bytes_copied == 0
    assert run(legacy=True).stats.segment_bytes_copied > 0


def test_legacy_and_optimized_disks_byte_identical():
    """Same workload, both codec generations: identical on-disk bytes."""
    from repro.ld.hints import LIST_HEAD
    from repro.lld.lld import LLD

    def run(legacy: bool):
        disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        lld = LLD(disk, LLDConfig(segment_size=64 * 1024,
                                  checkpoint_slots=1,
                                  legacy_codecs=legacy))
        lld.initialize()
        lid = lld.new_list()
        prev = LIST_HEAD
        for i in range(24):
            bid = lld.new_block(lid, prev)
            prev = bid
            lld.write(bid, bytes([i + 1]) * 2048)
            if i % 3 == 2:
                lld.flush()
        lld.delete_block(prev, lid)
        lld.flush()
        return disk

    a, b = run(legacy=False), run(legacy=True)
    assert a.clock.now == b.clock.now
    assert a.sectors_populated == b.sectors_populated
    assert a.peek(0, a.geometry.total_sectors) == b.peek(0, b.geometry.total_sectors)
