"""Stress: ARUs + cleaning pressure + repeated crashes, all interleaved.

The nastiest interactions in LLD are between the cleaner (which rewrites
live data and re-logs metadata) and open ARUs (whose pre-images must not
be destroyed). This test drives all of them at once on a small disk and
verifies exact state after every crash.
"""

import random

import pytest

from repro.ld import LIST_HEAD
from repro.lld import LLD

from tests.lld.conftest import make_lld, reopen


def test_aru_churn_crash_torture():
    rng = random.Random(1234)
    lld = make_lld(capacity_mb=2)
    payload = lambda i: bytes([i % 251]) * 4096

    lid = lld.new_list()
    committed: dict[int, bytes] = {}
    chain: list[int] = []

    prev = LIST_HEAD
    for i in range(40):  # base population near 1/3 of capacity
        bid = lld.new_block(lid, prev)
        lld.write(bid, payload(i))
        committed[bid] = payload(i)
        chain.append(bid)
        prev = bid
    lld.flush()

    for round_no in range(12):
        # A committed ARU: overwrite a few random blocks.
        with lld.aru():
            for _ in range(4):
                bid = rng.choice(chain)
                data = payload(rng.randrange(251))
                lld.write(bid, data)
                committed[bid] = data
        # An aborted ARU: more overwrites that must vanish.
        try:
            with lld.aru():
                for _ in range(3):
                    lld.write(rng.choice(chain), b"\xbb" * 4096)
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        # Churn outside ARUs to force sealing and cleaning. These are
        # unflushed sometimes, so track only what a flush makes durable.
        for _ in range(6):
            bid = rng.choice(chain)
            data = payload(rng.randrange(251))
            lld.write(bid, data)
            committed[bid] = data
        lld.flush()

        if round_no % 3 == 2:
            lld = reopen(lld)  # crash + one-sweep recovery
            assert lld.list_blocks(lid) == chain
            for bid, expected in committed.items():
                assert lld.read(bid) == expected, f"round {round_no}, block {bid}"

    # Final verification after heavy interleaving.
    lld = reopen(lld)
    for bid, expected in committed.items():
        assert lld.read(bid) == expected


def test_swap_under_cleaning_pressure():
    """swap_contents stays correct while the cleaner relocates blocks."""
    rng = random.Random(77)
    lld = make_lld(capacity_mb=2)
    lid = lld.new_list()
    blocks: dict[int, bytes] = {}
    prev = LIST_HEAD
    for i in range(60):
        bid = lld.new_block(lid, prev)
        data = bytes([i % 251]) * 4096
        lld.write(bid, data)
        blocks[bid] = data
        prev = bid
    bids = list(blocks)
    for _ in range(150):
        a, b = rng.sample(bids, 2)
        lld.swap_contents(a, b)
        blocks[a], blocks[b] = blocks[b], blocks[a]
        if rng.random() < 0.2:
            bid = rng.choice(bids)
            data = bytes([rng.randrange(251)]) * 4096
            lld.write(bid, data)
            blocks[bid] = data
    for bid, expected in blocks.items():
        assert lld.read(bid) == expected
    lld.flush()
    recovered = reopen(lld)
    for bid, expected in blocks.items():
        assert recovered.read(bid) == expected
