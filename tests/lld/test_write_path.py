"""Delta partial-segment flush tests (the incremental write path).

The paper's §3.2 strategy rewrites the whole open-segment image on every
below-threshold Flush. The delta write path keeps a durable watermark in
the open segment and writes only the summary prefix plus the data tail —
at most two contiguous writes — while recovery must see byte-identical
state either way.
"""

import pytest

from repro.ld import LIST_HEAD
from repro.lld import LLD
from repro.lld.nvram import NVRAM

from tests.lld.conftest import make_lld, reopen


def fill_block(i: int, size: int = 4096) -> bytes:
    return bytes([i % 251 + 1]) * size


def recovered_image(lld: LLD) -> dict:
    """Everything a client could observe after recovery."""
    blocks = {bid: lld.read(bid) for bid in sorted(lld.state.blocks)}
    lists = {lid: lld.list_blocks(lid) for lid in sorted(lld.state.lists)}
    return {"blocks": blocks, "lists": lists}


def run_small_write_workload(lld: LLD, count: int = 8) -> tuple[int, list[int]]:
    """``count`` small synced appends to one list; returns (lid, bids)."""
    lid = lld.new_list()
    prev = LIST_HEAD
    bids = []
    for i in range(count):
        bid = lld.new_block(lid, prev)
        lld.write(bid, fill_block(i, 2048))
        lld.flush()
        prev = bid
        bids.append(bid)
    return lid, bids


# ----------------------------------------------------------------------
# Delta-write invariants
# ----------------------------------------------------------------------


def test_first_partial_flush_is_one_full_image_write():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, fill_block(1))
    writes_before = lld.disk.stats.writes
    lld.flush()
    assert lld.disk.stats.writes == writes_before + 1
    assert lld.stats.partial_full_writes == 1
    assert lld.stats.partial_delta_flushes == 0


def test_subsequent_partial_flush_is_at_most_two_writes():
    lld = make_lld()
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    lld.write(a, fill_block(1))
    lld.flush()
    b = lld.new_block(lid, a)
    lld.write(b, fill_block(2))
    writes_before = lld.disk.stats.writes
    sectors_before = lld.disk.stats.sectors_written
    lld.flush()
    assert lld.disk.stats.writes - writes_before <= 2
    # The delta is tiny compared to the slot: one block of data plus a
    # summary prefix, not the whole accumulated image.
    delta_sectors = lld.disk.stats.sectors_written - sectors_before
    assert delta_sectors * 512 < lld.config.segment_size // 4
    assert lld.stats.partial_delta_flushes == 1


def test_delta_flush_cost_stays_flat_as_segment_fills():
    """The O(n^2) fix: flush cost tracks the delta, not the fill level."""
    lld = make_lld()
    lid = lld.new_list()
    prev = LIST_HEAD
    per_flush_sectors = []
    for i in range(6):
        bid = lld.new_block(lid, prev)
        lld.write(bid, fill_block(i))
        before = lld.disk.stats.sectors_written
        lld.flush()
        per_flush_sectors.append(lld.disk.stats.sectors_written - before)
        prev = bid
    # After the first (full-image) flush, every delta flush costs about
    # the same, instead of growing with the accumulated data.
    deltas = per_flush_sectors[1:]
    assert max(deltas) <= deltas[0] + lld.config.summary_sectors


def test_full_image_path_grows_per_flush():
    """The pre-change baseline really does rewrite everything each time."""
    lld = make_lld(delta_partial_flush=False)
    lid = lld.new_list()
    prev = LIST_HEAD
    per_flush_sectors = []
    for i in range(4):
        bid = lld.new_block(lid, prev)
        lld.write(bid, fill_block(i))
        before = lld.disk.stats.sectors_written
        lld.flush()
        per_flush_sectors.append(lld.disk.stats.sectors_written - before)
        prev = bid
    assert per_flush_sectors == sorted(per_flush_sectors)
    assert per_flush_sectors[-1] > per_flush_sectors[0]
    assert lld.stats.partial_delta_flushes == 0


def test_metadata_only_flush_writes_summary_only():
    lld = make_lld()
    lld.new_list()
    lld.flush()  # first flush on the slot: full image (summary only)
    lld.new_list()
    writes_before = lld.disk.stats.writes
    lld.flush()
    assert lld.disk.stats.writes == writes_before + 1
    assert lld.stats.partial_delta_summary_bytes > 0
    assert lld.stats.partial_delta_data_bytes == 0


def test_clean_partial_flush_writes_nothing():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, fill_block(1))
    lld.flush()
    writes_before = lld.disk.stats.writes
    partials_before = lld.stats.partial_segment_writes
    lld.flush()  # nothing new since the last flush
    assert lld.disk.stats.writes == writes_before
    assert lld.stats.partial_segment_writes == partials_before
    assert lld.stats.partial_delta_noop == 1


def test_flush_counters_skip_empty_noops():
    lld = make_lld()
    lld.flush()
    lld.flush()
    assert lld.stats.flushes == 0
    assert lld.stats.flushes_noop == 2
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, fill_block(1))
    lld.flush()
    assert lld.stats.flushes == 1
    assert lld.stats.flushes_noop == 2


def test_write_amplification_accounting():
    lld = make_lld(delta_partial_flush=False)
    lid = lld.new_list()
    prev = LIST_HEAD
    for i in range(5):
        bid = lld.new_block(lid, prev)
        lld.write(bid, fill_block(i))
        lld.flush()
        prev = bid
    full = lld.stats
    assert full.data_bytes_logical == 5 * 4096
    assert full.data_bytes_physical > full.data_bytes_logical
    assert full.write_amplification > 1.0

    delta_lld = make_lld()
    lid = delta_lld.new_list()
    prev = LIST_HEAD
    for i in range(5):
        bid = delta_lld.new_block(lid, prev)
        delta_lld.write(bid, fill_block(i))
        delta_lld.flush()
        prev = bid
    assert delta_lld.stats.data_bytes_logical == full.data_bytes_logical
    assert delta_lld.stats.data_bytes_physical < full.data_bytes_physical
    assert "write_amplification" in delta_lld.stats.as_dict()


# ----------------------------------------------------------------------
# Crash-recovery equivalence with the full-image path
# ----------------------------------------------------------------------


def workload_then_crash(delta: bool, nvram: NVRAM | None = None) -> dict:
    lld = make_lld(delta_partial_flush=delta)
    if nvram is not None:
        lld.nvram = nvram
    lid, bids = run_small_write_workload(lld, count=10)
    # Overwrite one already-durable block, delete another, then flush, so
    # the delta path sees updates as well as appends.
    lld.write(bids[1], fill_block(99, 1024))
    lld.delete_block(bids[2], lid)
    lld.flush()
    recovered = LLD(lld.disk, lld.config, nvram=lld.nvram)
    lld.crash()
    recovered.initialize()
    return recovered_image(recovered)


def test_recovery_equivalence_delta_vs_full_image():
    assert workload_then_crash(delta=True) == workload_then_crash(delta=False)


def test_recovery_equivalence_with_nvram_absorption():
    # A small NVRAM absorbs early flushes and overflows later, exercising
    # the watermark reset on absorption and the fall-back to delta writes.
    with_nvram = workload_then_crash(delta=True, nvram=NVRAM(capacity_bytes=24 * 1024))
    without = workload_then_crash(delta=False)
    assert with_nvram == without


def test_recovery_equivalence_across_partial_sequence():
    """Crash after every prefix of the flush sequence matches the baseline."""
    for crash_after in (1, 3, 7):
        images = []
        for delta in (True, False):
            lld = make_lld(delta_partial_flush=delta)
            lid = lld.new_list()
            prev = LIST_HEAD
            for i in range(crash_after):
                bid = lld.new_block(lid, prev)
                lld.write(bid, fill_block(i, 3000))
                lld.flush()
                prev = bid
            recovered = reopen(lld)
            images.append(recovered_image(recovered))
        assert images[0] == images[1], f"diverged after {crash_after} flushes"


def test_nvram_watermark_reset_falls_back_to_full_image():
    nvram = NVRAM(capacity_bytes=20 * 1024)
    lld = make_lld()
    lld.nvram = nvram
    lid = lld.new_list()
    a = lld.new_block(lid, LIST_HEAD)
    lld.write(a, fill_block(1))
    lld.flush()
    assert lld.stats.nvram_absorbed == 1
    assert lld._open.never_flushed  # watermark was reset on absorption
    b = lld.new_block(lid, a)
    lld.write(b, fill_block(2))
    lld.write(lld.new_block(lid, b), fill_block(3))
    lld.write(lld.new_block(lid, b), fill_block(4))
    lld.write(lld.new_block(lid, b), fill_block(5))
    lld.flush()  # image no longer fits in NVRAM -> full image to disk
    assert nvram.overflows == 1
    assert not nvram.holds_data  # superseded by the disk copy
    assert lld.stats.partial_full_writes == 1
    recovered = reopen(lld)
    assert recovered.read(a) == fill_block(1)
    assert recovered.read(b) == fill_block(2)


def test_seal_after_deltas_recovers_identically():
    for delta in (True, False):
        lld = make_lld(delta_partial_flush=delta)
        lid = lld.new_list()
        a = lld.new_block(lid, LIST_HEAD)
        lld.write(a, b"early" * 100)
        lld.flush()
        prev = a
        while lld.stats.segments_sealed == 0:
            bid = lld.new_block(lid, prev)
            lld.write(bid, fill_block(7))
            lld.flush()
            prev = bid
        recovered = reopen(lld)
        assert recovered.read(a) == b"early" * 100


# ----------------------------------------------------------------------
# Free-slot set (incremental _pick_free_slot input)
# ----------------------------------------------------------------------


def brute_force_free_slots(lld: LLD) -> set:
    return {
        slot
        for slot in range(lld.layout.segment_count)
        if lld.state.usage.get(slot, 0) <= 0
    }


def test_free_slot_set_matches_usage_scan_through_churn():
    lld = make_lld(capacity_mb=2)
    assert lld.state.free_slots == brute_force_free_slots(lld)
    lid = lld.new_list()
    prev = LIST_HEAD
    bids = []
    # Fill enough to seal several segments, then delete to free them.
    for i in range(100):
        bid = lld.new_block(lid, prev)
        lld.write(bid, fill_block(i))
        prev = bid
        bids.append(bid)
    lld.flush()
    assert lld.state.free_slots == brute_force_free_slots(lld)
    for bid in bids[:60]:
        lld.delete_block(bid, lid)
    lld.flush()
    assert lld.state.free_slots == brute_force_free_slots(lld)
    lld.clean(2)
    assert lld.state.free_slots == brute_force_free_slots(lld)
    recovered = reopen(lld)
    assert recovered.state.free_slots == brute_force_free_slots(recovered)


def test_free_slot_set_survives_clean_shutdown():
    lld = make_lld()
    lid = lld.new_list()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, fill_block(1))
    recovered = reopen(lld, after_crash=False)
    assert recovered.state.free_slots == brute_force_free_slots(recovered)
