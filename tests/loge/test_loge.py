"""Tests for the Loge-style controller (paper section 5.2)."""

import pytest

from repro.disk import SimulatedDisk, fast_test_disk
from repro.ld import LIST_HEAD
from repro.ld.errors import ARUError, NoSuchBlockError, OutOfSpaceError
from repro.loge import LogeDisk
from repro.sim import VirtualClock


def make_loge(capacity_mb: int = 4) -> LogeDisk:
    disk = SimulatedDisk(fast_test_disk(capacity_mb=capacity_mb), VirtualClock())
    loge = LogeDisk(disk)
    loge.initialize()
    return loge


def test_basic_roundtrip():
    loge = make_loge()
    lid = loge.new_list()
    bid = loge.new_block(lid, LIST_HEAD)
    loge.write(bid, b"self-organizing")
    assert loge.read(bid) == b"self-organizing"


def test_every_write_changes_physical_location():
    """Loge never updates in place: each write goes to a fresh slot."""
    loge = make_loge()
    lid = loge.new_list()
    bid = loge.new_block(lid, LIST_HEAD)
    loge.write(bid, b"v1")
    slot1 = loge._table[bid]
    loge.write(bid, b"v2")
    slot2 = loge._table[bid]
    assert slot1 != slot2
    assert loge.read(bid) == b"v2"


def test_old_slot_returns_to_free_pool():
    loge = make_loge()
    lid = loge.new_list()
    bid = loge.new_block(lid, LIST_HEAD)
    loge.write(bid, b"v1")
    slot1 = loge._table[bid]
    loge.write(bid, b"v2")
    assert slot1 in loge._free_slots


def test_writes_are_individually_durable():
    """Recovery finds every written block — no flush required."""
    loge = make_loge()
    lid = loge.new_list()
    bids = []
    for i in range(10):
        bid = loge.new_block(lid, LIST_HEAD)
        loge.write(bid, bytes([i]) * 100)
        bids.append(bid)
    loge.crash()
    fresh = LogeDisk(loge.disk, loge.config)
    fresh.initialize()
    for i, bid in enumerate(bids):
        assert fresh.read(bid) == bytes([i]) * 100


def test_latest_version_wins_after_recovery():
    loge = make_loge()
    lid = loge.new_list()
    bid = loge.new_block(lid, LIST_HEAD)
    for i in range(5):
        loge.write(bid, bytes([i]) * 64)
    loge.crash()
    fresh = LogeDisk(loge.disk, loge.config)
    fresh.initialize()
    assert fresh.read(bid) == bytes([4]) * 64


def test_recovery_reads_whole_disk():
    """Loge's recovery cost: a scan of every physical block."""
    loge = make_loge()
    lid = loge.new_list()
    bid = loge.new_block(lid, LIST_HEAD)
    loge.write(bid, b"x")
    loge.crash()
    fresh = LogeDisk(loge.disk, loge.config)
    fresh.initialize()
    total = loge.disk.geometry.total_sectors
    assert fresh.recovery_sectors_read >= total * 0.95


def test_list_info_is_volatile():
    """The controller cannot recover relationships from the I/O stream."""
    loge = make_loge()
    lid = loge.new_list()
    bid = loge.new_block(lid, LIST_HEAD)
    loge.write(bid, b"data")
    loge.crash()
    fresh = LogeDisk(loge.disk, loge.config)
    fresh.initialize()
    from repro.ld.errors import NoSuchListError

    with pytest.raises(NoSuchListError):
        fresh.list_blocks(lid)
    # The block itself is recovered (from its header), just unlinked.
    assert fresh.read(bid) == b"data"


def test_no_aru_support():
    loge = make_loge()
    with pytest.raises(ARUError):
        loge.begin_aru()
    with pytest.raises(ARUError):
        loge.end_aru()


def test_placement_prefers_nearby_slots():
    loge = make_loge()
    lid = loge.new_list()
    # Park the head somewhere in the middle of the disk.
    middle = loge.slot_count // 2
    loge.disk.read(loge._slot_lba(middle), 1)
    bid = loge.new_block(lid, LIST_HEAD)
    loge.write(bid, b"near me")
    chosen = loge._table[bid]
    geometry = loge.disk.geometry
    head_cyl = geometry.cylinder_of(loge._slot_lba(middle))
    chosen_cyl = geometry.cylinder_of(loge._slot_lba(chosen))
    assert abs(chosen_cyl - head_cyl) <= 1


def test_reserved_pool_limits_allocation():
    loge = make_loge(capacity_mb=2)
    lid = loge.new_list()
    with pytest.raises(OutOfSpaceError):
        for _ in range(100000):
            bid = loge.new_block(lid, LIST_HEAD)
            loge.write(bid, b"\x01" * 4096)
    # Some slots remain reserved for Loge's internal operation.
    assert len(loge._free_slots) >= int(loge.slot_count * 0.04)


def test_delete_block_frees_slot():
    loge = make_loge()
    lid = loge.new_list()
    bid = loge.new_block(lid, LIST_HEAD)
    loge.write(bid, b"bye")
    slot = loge._table[bid]
    loge.delete_block(bid, lid)
    assert slot in loge._free_slots
    with pytest.raises(NoSuchBlockError):
        loge.read(bid)


def test_flush_is_noop():
    loge = make_loge()
    writes = loge.disk.stats.writes
    loge.flush()
    assert loge.disk.stats.writes == writes
