"""The ``python -m repro.obs`` dashboard: layer attribution from a trace."""

from repro.obs import Tracer, export_chrome_trace, export_jsonl
from repro.obs.__main__ import main, render_dashboard, self_times
from repro.sim import VirtualClock


def make_trace():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("fs.sync"):
        clock.advance(0.010)  # 10 ms of fs-exclusive work
        with tracer.span("lld.flush"):
            clock.advance(0.005)
            with tracer.span("disk.write", sectors=8):
                clock.advance(0.030)
        tracer.instant("disk.barrier")
    return tracer.spans


def test_self_times_are_exclusive():
    spans = make_trace()
    exclusive = self_times(spans)
    by_name = {s.name: exclusive[s.span_id] for s in spans}
    assert abs(by_name["fs.sync"] - 0.010) < 1e-12
    assert abs(by_name["lld.flush"] - 0.005) < 1e-12
    assert abs(by_name["disk.write"] - 0.030) < 1e-12
    # Exclusive times sum to the wall window of the root span.
    root = next(s for s in spans if s.parent_id is None)
    assert abs(sum(exclusive.values()) - root.duration) < 1e-12


def test_dashboard_attributes_time_to_layers():
    text = render_dashboard(make_trace())
    # The disk dominates (30 of 45 ms), so it ranks first.
    layer_section = text.split("per-op latency")[0]
    disk_line = next(l for l in layer_section.splitlines() if l.startswith("disk"))
    assert "66.7%" in disk_line
    assert "fs" in layer_section and "lld" in layer_section
    assert "1 root span(s)" in text
    assert "3 levels" in text


def test_dashboard_handles_empty_trace():
    assert "empty trace" in render_dashboard([])


def test_cli_main_renders_both_formats(tmp_path, capsys):
    spans = make_trace()
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    export_chrome_trace(spans, chrome)
    export_jsonl(spans, jsonl)
    for path in (chrome, jsonl):
        assert main([str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "per-layer attribution" in out
        assert "disk.write" in out
