"""The ``python -m repro.obs`` dashboard: layer attribution from a trace."""

from repro.obs import Tracer, export_chrome_trace, export_jsonl
from repro.obs.__main__ import main, render_dashboard, self_times
from repro.sim import VirtualClock


def make_trace():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("fs.sync"):
        clock.advance(0.010)  # 10 ms of fs-exclusive work
        with tracer.span("lld.flush"):
            clock.advance(0.005)
            with tracer.span("disk.write", sectors=8):
                clock.advance(0.030)
        tracer.instant("disk.barrier")
    return tracer.spans


def test_self_times_are_exclusive():
    spans = make_trace()
    exclusive = self_times(spans)
    by_name = {s.name: exclusive[s.span_id] for s in spans}
    assert abs(by_name["fs.sync"] - 0.010) < 1e-12
    assert abs(by_name["lld.flush"] - 0.005) < 1e-12
    assert abs(by_name["disk.write"] - 0.030) < 1e-12
    # Exclusive times sum to the wall window of the root span.
    root = next(s for s in spans if s.parent_id is None)
    assert abs(sum(exclusive.values()) - root.duration) < 1e-12


def test_dashboard_attributes_time_to_layers():
    text = render_dashboard(make_trace())
    # The disk dominates (30 of 45 ms), so it ranks first.
    layer_section = text.split("per-op latency")[0]
    disk_line = next(l for l in layer_section.splitlines() if l.startswith("disk"))
    assert "66.7%" in disk_line
    assert "fs" in layer_section and "lld" in layer_section
    assert "1 root span(s)" in text
    assert "3 levels" in text


def test_dashboard_handles_empty_trace():
    assert "empty trace" in render_dashboard([])


def test_cli_handles_empty_trace_file(tmp_path, capsys):
    path = tmp_path / "empty.json"
    export_chrome_trace([], path)
    assert main([str(path)]) == 0
    assert "empty trace: no spans" in capsys.readouterr().out


def test_cli_handles_instant_only_trace(tmp_path, capsys):
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("disk.write"):
        tracer.instant("disk.barrier")
        tracer.instant("lld.aru_boundary")
    path = tmp_path / "instants.json"
    # The clock never advanced: every span is zero-duration. The dashboard
    # must not divide by the zero time window or crash ranking the ops.
    export_chrome_trace(tracer.spans, path)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "3 spans" in out
    assert "disk.barrier" in out
    assert "window 0.000 ms" in out


def test_cli_handles_unknown_layer_spans(tmp_path, capsys):
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("mystery_op"):  # no dot: layer falls back to full name
        clock.advance(0.002)
        with tracer.span("custom.step"):
            clock.advance(0.001)
    path = tmp_path / "unknown.json"
    export_chrome_trace(tracer.spans, path)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    layer_section = out.split("per-op latency")[0]
    assert "mystery_op" in layer_section
    assert "custom" in layer_section


def test_cli_main_renders_both_formats(tmp_path, capsys):
    spans = make_trace()
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    export_chrome_trace(spans, chrome)
    export_jsonl(spans, jsonl)
    for path in (chrome, jsonl):
        assert main([str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "per-layer attribution" in out
        assert "disk.write" in out
