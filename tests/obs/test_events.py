"""EventLog: emission, severity validation, bounded ring, JSONL round-trip."""

import pytest

from repro.obs.events import (
    Event,
    EventLog,
    export_events_jsonl,
    load_events_jsonl,
)
from repro.sim import VirtualClock


def test_emit_stamps_virtual_time_and_payload():
    clock = VirtualClock()
    log = EventLog(clock)
    clock.advance(1.5)
    event = log.emit("volume.member_failed", severity="warn", member=2)
    assert event.t == 1.5
    assert event.layer == "volume"
    assert event.payload == {"member": 2}
    assert log.emitted == 1


def test_empty_log_is_truthy():
    # The choke-point guard is `ev = self.events` / `if ev:` — an empty
    # log being falsy would silently swallow the first event of a run.
    log = EventLog()
    assert len(log) == 0
    assert bool(log)


def test_unknown_severity_raises():
    log = EventLog()
    with pytest.raises(ValueError, match="unknown severity"):
        log.emit("x.y", severity="fatal")


def test_explicit_timestamp_and_no_clock_default():
    log = EventLog()  # no clock: offline replay
    assert log.emit("a.b").t == 0.0
    assert log.emit("a.b", t=3.25).t == 3.25


def test_ring_is_bounded_and_counts_drops():
    log = EventLog(capacity=4)
    for i in range(10):
        log.emit("lld.cleaner_pass", slot=i)
    assert len(log) == 4
    assert log.emitted == 10
    assert log.dropped == 6
    assert [e.payload["slot"] for e in log] == [6, 7, 8, 9]
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_select_filters_compose():
    log = EventLog()
    log.emit("volume.member_failed", severity="warn", t=1.0)
    log.emit("lld.cleaner_pass", severity="debug", t=2.0)
    log.emit("volume.rebuild_started", severity="info", t=3.0)
    assert [e.name for e in log.select(layer="volume")] == [
        "volume.member_failed",
        "volume.rebuild_started",
    ]
    assert len(log.select(min_severity="warn")) == 1
    assert len(log.select(since=2.5)) == 1
    assert len(log.select(layer="volume", name="volume.rebuild_started")) == 1


def test_counts_by_name_and_clear():
    log = EventLog()
    log.emit("a.x")
    log.emit("a.x")
    log.emit("b.y")
    assert log.counts_by_name() == {"a.x": 2, "b.y": 1}
    log.clear()
    assert len(log) == 0
    assert log.emitted == 3  # lifetime total survives a clear


def test_jsonl_round_trip(tmp_path):
    log = EventLog()
    log.emit("volume.member_failed", severity="error", t=1.25, member=2)
    log.emit("health.volume_degraded", t=1.5, status="warn", previous=None)
    path = tmp_path / "events.jsonl"
    export_events_jsonl(log, path)
    loaded = load_events_jsonl(path)
    assert [e.as_dict() for e in loaded] == [e.as_dict() for e in log]
    assert loaded[0].severity == "error"
    assert loaded[0].payload["member"] == 2


def test_load_skips_blank_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"t": 1.0, "name": "a.b"}\n\n\n')
    loaded = load_events_jsonl(path)
    assert len(loaded) == 1
    assert loaded[0].severity == "info"  # defaulted
    assert isinstance(loaded[0], Event)
