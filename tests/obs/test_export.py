"""Trace export round-trips: Chrome ``trace_event`` JSON and JSONL."""

import json

import pytest

from repro.obs import (
    Tracer,
    export_chrome_trace,
    export_jsonl,
    load_chrome_trace,
    load_jsonl,
    load_trace,
)
from repro.sim import VirtualClock


@pytest.fixture
def traced():
    """A small multi-layer trace with nesting, siblings, and an instant."""
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("fs.sync", deferred=False):
        clock.advance(0.001)
        with tracer.span("lld.flush"):
            with tracer.span("lld.data_tail_write", nbytes=4096):
                clock.advance(0.0035)
            with tracer.span("lld.summary_write", nbytes=512):
                clock.advance(0.002)
            tracer.instant("disk.barrier", label="flush")
        clock.advance(0.0005)
    return tracer.spans


def _by_id(spans):
    return {s.span_id: s for s in spans}


def assert_round_trip_invariants(original, loaded):
    assert len(loaded) == len(original)
    out = _by_id(loaded)
    src = _by_id(original)
    assert out.keys() == src.keys()
    for sid, span in out.items():
        # Causality survives the round trip.
        assert span.parent_id == src[sid].parent_id
        assert span.name == src[sid].name
        # Virtual-clock monotonicity: child inside parent's interval.
        if span.parent_id is not None:
            parent = out[span.parent_id]
            assert span.start >= parent.start
            assert span.end <= parent.end
        assert span.end >= span.start


def test_chrome_round_trip(tmp_path, traced):
    path = tmp_path / "trace.json"
    assert export_chrome_trace(traced, path) == str(path)
    loaded = load_chrome_trace(path)
    assert_round_trip_invariants(traced, loaded)
    # Attrs ride along through the event args.
    spans = {s.name: s for s in loaded}
    assert spans["lld.data_tail_write"].attrs == {"nbytes": 4096}
    assert spans["disk.barrier"].attrs == {"label": "flush"}
    assert spans["disk.barrier"].duration == 0.0


def test_chrome_file_is_loadable_trace_event_json(tmp_path, traced):
    path = tmp_path / "trace.json"
    export_chrome_trace(traced, path)
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert all(e["ph"] == "X" for e in events)
    # Microsecond timestamps, start-time ordered.
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts)
    assert events[0]["ts"] == 0.0
    assert payload["otherData"]["clock"] == "virtual"
    # Category is the layer, for Perfetto's grouping.
    assert {e["cat"] for e in events} == {"fs", "lld", "disk"}


def test_jsonl_round_trip_is_exact(tmp_path, traced):
    path = tmp_path / "trace.jsonl"
    export_jsonl(traced, path)
    loaded = load_jsonl(path)
    assert_round_trip_invariants(traced, loaded)
    # JSONL keeps exact floats: spans compare equal field by field.
    src = _by_id(traced)
    for span in loaded:
        assert span == src[span.span_id]


def test_load_trace_sniffs_both_formats(tmp_path, traced):
    chrome = tmp_path / "a.json"
    jsonl = tmp_path / "b.jsonl"
    export_chrome_trace(traced, chrome)
    export_jsonl(traced, jsonl)
    assert {s.span_id for s in load_trace(chrome)} == {s.span_id for s in traced}
    assert {s.span_id for s in load_trace(jsonl)} == {s.span_id for s in traced}


def test_empty_trace_round_trips(tmp_path):
    path = tmp_path / "empty.json"
    export_chrome_trace([], path)
    assert load_trace(path) == []
    path = tmp_path / "empty.jsonl"
    export_jsonl([], path)
    assert load_jsonl(path) == []
