"""Health rules and the Monitor: each failure mode fires in a crafted scenario."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.health import (
    CRITICAL,
    OK,
    WARN,
    FreeSegmentsRule,
    HealthContext,
    HealthMonitor,
    Monitor,
    RebuildStalledRule,
    SLOBurnRule,
    VolumeDegradedRule,
    WriteAmpSpikeRule,
    default_rules,
)
from repro.obs.events import EventLog
from repro.obs.series import Series
from repro.sim import VirtualClock


def one(findings):
    assert len(findings) == 1, findings
    return findings[0]


def volume_payload(live=4, total=4, rebuild=False, progress=0.0):
    return {
        "volume": {
            "live_disks": live,
            "n_disks": total,
            "rebuild_active": rebuild,
            "rebuild_progress": progress,
        }
    }


class TestVolumeDegradedRule:
    def test_all_members_live_is_ok(self):
        f = one(VolumeDegradedRule().evaluate(HealthContext(volume_payload())))
        assert f.status == OK

    def test_member_down_without_rebuild_is_critical(self):
        ctx = HealthContext(volume_payload(live=3))
        f = one(VolumeDegradedRule().evaluate(ctx))
        assert f.status == CRITICAL
        assert "redundancy lost" in f.detail

    def test_member_down_during_rebuild_is_warn(self):
        ctx = HealthContext(volume_payload(live=3, rebuild=True, progress=0.4))
        f = one(VolumeDegradedRule().evaluate(ctx))
        assert f.status == WARN
        assert "40%" in f.detail

    def test_no_volume_layer_is_silent(self):
        assert VolumeDegradedRule().evaluate(HealthContext({"lld": {}})) == []


def progress_series(points):
    series = Series("volume.rebuild_progress", capacity=64)
    for t, v in points:
        series.record(t, v)
    return {"volume.rebuild_progress": series}


class TestRebuildStalledRule:
    def test_flatlined_progress_is_warn(self):
        series = progress_series([(0.0, 0.3), (0.5, 0.3), (0.7, 0.3), (0.9, 0.3)])
        ctx = HealthContext(
            volume_payload(live=3, rebuild=True, progress=0.3), series=series
        )
        f = one(RebuildStalledRule(stall_seconds=0.5).evaluate(ctx))
        assert f.status == WARN
        assert "stuck at 30%" in f.detail

    def test_advancing_progress_is_ok(self):
        series = progress_series([(0.0, 0.3), (0.5, 0.5), (0.7, 0.65), (0.9, 0.8)])
        ctx = HealthContext(
            volume_payload(live=3, rebuild=True, progress=0.8), series=series
        )
        assert one(RebuildStalledRule(stall_seconds=0.5).evaluate(ctx)).status == OK

    def test_warming_up_with_few_samples_is_ok(self):
        series = progress_series([(0.0, 0.1)])
        ctx = HealthContext(
            volume_payload(live=3, rebuild=True, progress=0.1), series=series
        )
        f = one(RebuildStalledRule().evaluate(ctx))
        assert f.status == OK
        assert "warming up" in f.detail

    def test_no_rebuild_is_ok(self):
        f = one(RebuildStalledRule().evaluate(HealthContext(volume_payload())))
        assert f.status == OK


def sched_payload(p99, acks=10):
    return {"sched": {"tenants": {"a": {"acks": acks, "ack_latency_p99": p99}}}}


class TestSLOBurnRule:
    def test_under_target_is_ok(self):
        rule = SLOBurnRule({"a": 0.010})
        f = one(rule.evaluate(HealthContext(sched_payload(0.008))))
        assert f.status == OK
        assert f.subject == "a"

    def test_over_target_is_warn(self):
        f = one(SLOBurnRule({"a": 0.010}).evaluate(HealthContext(sched_payload(0.015))))
        assert f.status == WARN
        assert "1.50x" in f.detail

    def test_double_target_is_critical(self):
        f = one(SLOBurnRule({"a": 0.010}).evaluate(HealthContext(sched_payload(0.021))))
        assert f.status == CRITICAL

    def test_sustained_burn_escalates_to_critical(self):
        series = Series("sched.tenants.a.ack_latency_p99", capacity=64)
        for i in range(10):
            series.record(i * 0.1, 0.015)  # every sample over the 10ms SLO
        ctx = HealthContext(
            sched_payload(0.015),
            series={"sched.tenants.a.ack_latency_p99": series},
        )
        f = one(SLOBurnRule({"a": 0.010}).evaluate(ctx))
        assert f.status == CRITICAL
        assert "burn rate 100%" in f.detail

    def test_tenant_without_target_or_acks_is_skipped(self):
        rule = SLOBurnRule({"b": 0.010})  # "a" has no target
        assert rule.evaluate(HealthContext(sched_payload(0.5))) == []
        rule = SLOBurnRule({"a": 0.010})
        assert rule.evaluate(HealthContext(sched_payload(0.5, acks=0))) == []

    def test_default_target_covers_unnamed_tenants(self):
        rule = SLOBurnRule(default_p99=0.010)
        assert one(rule.evaluate(HealthContext(sched_payload(0.05)))).status != OK


class TestWriteAmpSpikeRule:
    @staticmethod
    def ctx(values):
        series = Series("lld.write_amplification", capacity=64)
        for i, v in enumerate(values):
            series.record(i * 0.1, v)
        return HealthContext(
            {"lld": {"write_amplification": values[-1] if values else 0.0}},
            series={"lld.write_amplification": series},
        )

    def test_spike_over_baseline_is_warn(self):
        f = one(WriteAmpSpikeRule().evaluate(self.ctx([1.1, 1.2, 1.1, 1.2, 3.0])))
        assert f.status == WARN
        assert "3.00x" in f.detail

    def test_steady_write_amp_is_ok(self):
        f = one(WriteAmpSpikeRule().evaluate(self.ctx([1.1, 1.2, 1.1, 1.2, 1.3])))
        assert f.status == OK

    def test_few_samples_is_warming_up(self):
        f = one(WriteAmpSpikeRule().evaluate(self.ctx([1.1, 4.0])))
        assert f.status == OK
        assert "warming up" in f.detail


class TestFreeSegmentsRule:
    def test_above_floor_is_ok(self):
        ctx = HealthContext({"space": {"free_segments": 9, "min_free_segments": 2}})
        assert one(FreeSegmentsRule().evaluate(ctx)).status == OK

    def test_below_floor_is_warn(self):
        ctx = HealthContext({"space": {"free_segments": 1, "min_free_segments": 2}})
        f = one(FreeSegmentsRule().evaluate(ctx))
        assert f.status == WARN
        assert "below" in f.detail

    def test_cleaner_starved_event_is_critical(self):
        events = EventLog()
        events.emit("lld.cleaner_starved", severity="error", target=3)
        ctx = HealthContext(
            {"space": {"free_segments": 4, "min_free_segments": 2}}, events=events
        )
        f = one(FreeSegmentsRule().evaluate(ctx))
        assert f.status == CRITICAL
        assert "starved" in f.detail


def test_health_monitor_runs_every_rule_in_order():
    payload = {
        **volume_payload(live=3),
        "space": {"free_segments": 0, "min_free_segments": 2},
    }
    findings = HealthMonitor(default_rules()).evaluate(HealthContext(payload))
    rules = [f.rule for f in findings]
    assert rules == ["volume_degraded", "rebuild_stalled", "free_segments"]
    assert {f.rule: f.status for f in findings}["volume_degraded"] == CRITICAL


class FakeVolume:
    """Mutable metrics source driving Monitor transition scenarios."""

    def __init__(self):
        self.live = 4
        self.rebuild_active = False
        self.progress = 0.0

    def __call__(self):
        return {
            "live_disks": self.live,
            "n_disks": 4,
            "rebuild_active": self.rebuild_active,
            "rebuild_progress": self.progress,
        }


def make_monitor():
    clock = VirtualClock()
    volume = FakeVolume()
    registry = MetricsRegistry()
    registry.register("volume", volume)
    return clock, volume, Monitor(registry, clock, interval=0.1)


def test_monitor_tick_gates_on_the_virtual_clock():
    clock, _volume, monitor = make_monitor()
    assert monitor.tick()
    assert not monitor.tick()  # idle: clock hasn't moved
    clock.advance(0.2)
    assert monitor.tick()
    assert monitor.checks == 2
    assert monitor.series.get("volume.live_disks").values() == [4.0, 4.0]


def test_monitor_records_status_transitions_not_steady_state():
    clock, volume, monitor = make_monitor()
    monitor.sample_now()
    monitor.sample_now()
    # First-ever ok is steady state: no health events yet.
    assert not monitor.events.select(layer="health")
    assert not monitor.findings

    volume.live = 3
    clock.advance(0.2)
    monitor.sample_now()
    assert {f.rule: f.status for f in monitor.findings} == {
        "volume_degraded": CRITICAL
    }

    volume.rebuild_active = True
    for _ in range(4):  # flatlined progress -> stall warning
        clock.advance(0.2)
        monitor.sample_now()
    statuses = {f.rule: f.status for f in monitor.findings}
    assert statuses["volume_degraded"] == WARN
    assert statuses["rebuild_stalled"] == WARN

    volume.progress = 1.0
    volume.rebuild_active = False
    volume.live = 4
    clock.advance(0.2)
    monitor.sample_now()
    assert not monitor.findings

    assert monitor.status_history("volume_degraded") == [CRITICAL, WARN, OK]
    assert monitor.status_history("rebuild_stalled") == [WARN, OK]
    # Transition events carry the previous status for the audit trail.
    last = monitor.events.select(name="health.volume_degraded")[-1]
    assert last.payload["previous"] == WARN
    assert last.severity == "info"


def test_monitor_attach_points_stack_events_here():
    class Component:
        def __init__(self):
            self.events = None

    _clock, _volume, monitor = make_monitor()
    component = Component()
    monitor.attach(component)
    assert component.events is monitor.events


def test_slo_burn_subject_tracks_per_tenant_history():
    clock = VirtualClock()
    tenants = {"a": {"acks": 5, "ack_latency_p99": 0.005}}
    registry = MetricsRegistry()
    registry.register("sched", lambda: {"tenants": tenants})
    monitor = Monitor(registry, clock, interval=0.1, slo_p99={"a": 0.010})
    monitor.sample_now()
    clock.advance(0.2)
    monitor.sample_now()
    # Burn rate is 1/3 (< the 0.5 critical threshold): a plain warn.
    tenants["a"]["ack_latency_p99"] = 0.015
    clock.advance(0.2)
    monitor.sample_now()
    tenants["a"]["ack_latency_p99"] = 0.004
    clock.advance(0.2)
    monitor.sample_now()
    assert monitor.status_history("slo_burn", subject="a") == [WARN, OK]


def test_monitor_repr_counts_active_findings():
    _clock, volume, monitor = make_monitor()
    volume.live = 2
    monitor.sample_now()
    assert "1 active finding(s)" in repr(monitor)
