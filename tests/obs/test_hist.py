"""LatencyHistogram: bounded buckets, quantiles, merge/subtract, round-trip."""

import math
import random

import pytest

from repro.obs.hist import SUBBUCKETS, LatencyHistogram, is_histogram_dict


def test_empty_histogram():
    hist = LatencyHistogram()
    assert not hist
    assert len(hist) == 0
    assert hist.quantile(0.5) == 0.0
    assert hist.mean == 0.0
    assert "empty" in repr(hist)


def test_record_tracks_exact_extrema_and_mean():
    hist = LatencyHistogram()
    for value in (0.010, 0.020, 0.030):
        hist.record(value)
    assert hist.count == 3
    assert hist.min == 0.010
    assert hist.max == 0.030
    assert abs(hist.mean - 0.020) < 1e-12


def test_zero_and_negative_samples_land_in_zero_bucket():
    hist = LatencyHistogram()
    hist.record(0.0)
    hist.record(-1.0)
    hist.record(0.005)
    assert hist.zeros == 2
    assert hist.count == 3
    assert hist.min == 0.0
    # Low quantiles hit the zero bucket; high ones the real sample.
    assert hist.quantile(0.0) == 0.0
    assert hist.quantile(0.99) > 0.0


def test_quantile_relative_error_is_within_a_bucket():
    rng = random.Random(7)
    values = [rng.uniform(1e-4, 1.0) for _ in range(5000)]
    hist = LatencyHistogram()
    for v in values:
        hist.record(v)
    values.sort()
    width = 2.0 ** (1.0 / SUBBUCKETS) - 1.0
    for q in (0.5, 0.9, 0.99):
        exact = values[round(q * (len(values) - 1))]
        approx = hist.quantile(q)
        assert abs(approx - exact) / exact <= width, (q, exact, approx)


def test_quantiles_never_exceed_tracked_extrema():
    # A bucket representative can overshoot the true max; the report must not.
    hist = LatencyHistogram()
    for v in (0.001, 0.001, 1.7325):
        hist.record(v)
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert hist.min <= hist.quantile(q) <= hist.max or hist.quantile(q) == 0.0
    assert hist.quantile(0.99) <= hist.max
    assert hist.quantile(1.0) == hist.max


def test_memory_is_bounded_by_index_clamp():
    hist = LatencyHistogram()
    for exponent in range(-400, 400):  # far beyond the clamp range
        hist.record(2.0**exponent)
    assert hist.count == 800
    assert len(hist.buckets) <= (64 * SUBBUCKETS) * 2 + 1
    assert min(hist.buckets) == -64 * SUBBUCKETS
    assert max(hist.buckets) == 64 * SUBBUCKETS


def test_merge_is_count_exact():
    a, b = LatencyHistogram(), LatencyHistogram()
    for v in (0.001, 0.002):
        a.record(v)
    for v in (0.004, 0.008):
        b.record(v)
    b.record(0.0)
    merged = a.copy().merge(b)
    assert merged.count == 5
    assert merged.zeros == 1
    assert merged.min == 0.0
    assert merged.max == 0.008
    assert abs(merged.total - (a.total + b.total)) < 1e-15


def test_subtract_recovers_the_window():
    hist = LatencyHistogram()
    for v in (0.001, 0.002):
        hist.record(v)
    before = hist.snapshot()
    for v in (0.100, 0.200, 0.400):
        hist.record(v)
    window = hist.subtract(before)
    assert window.count == 3
    # Window quantiles describe only post-snapshot samples.
    assert window.quantile(0.5) == pytest.approx(0.200, rel=0.05)
    assert window.quantile(0.0) > 0.002  # the old samples are gone
    # Subtracting a non-subset clamps at zero rather than going negative.
    degenerate = before.subtract(hist)
    assert degenerate.count == 0
    assert not degenerate.buckets


def test_as_dict_from_dict_round_trip():
    hist = LatencyHistogram()
    for v in (0.0, 0.003, 0.009, 0.027):
        hist.record(v)
    payload = hist.as_dict()
    assert is_histogram_dict(payload)
    assert payload["p50"] <= payload["p99"] <= payload["max"]
    assert all(isinstance(k, str) for k in payload["buckets"])
    clone = LatencyHistogram.from_dict(payload)
    assert clone.count == hist.count
    assert clone.zeros == hist.zeros
    assert clone.buckets == hist.buckets
    assert clone.as_dict() == payload


def test_from_dict_empty_payload():
    clone = LatencyHistogram.from_dict({})
    assert clone.count == 0
    assert clone.min == math.inf
    assert clone.quantile(0.99) == 0.0


def test_is_histogram_dict_rejects_lookalikes():
    assert not is_histogram_dict({"count": 3})
    assert not is_histogram_dict({"buckets": {}})
    assert not is_histogram_dict({"count": 3, "buckets": [1, 2]})
    assert not is_histogram_dict(42)
    assert is_histogram_dict(LatencyHistogram().as_dict())
