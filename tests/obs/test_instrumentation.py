"""End-to-end instrumentation over the MINIX → LD → LLD → disk stack."""

import pytest

from repro.bench.builders import BuildSpec, build_minix_lld
from repro.crashsim.recording import RecordingDisk
from repro.disk import SimulatedDisk, hp_c3010
from repro.ld.hints import LIST_HEAD
from repro.lld import LLD, LLDConfig
from repro.obs import Tracer, attach_tracer
from repro.sim import VirtualClock


@pytest.fixture
def spec():
    return BuildSpec.from_scale(0.05)


def fsync_some_files(fs, count=4, prefix="/f"):
    for i in range(count):
        fd = fs.open(f"{prefix}{i}", create=True)
        fs.write(fd, bytes([i + 1]) * 1024)
        fs.close(fd)
        fs.sync()


def descendants(spans, root):
    children = {}
    for s in spans:
        if s.parent_id is not None:
            children.setdefault(s.parent_id, []).append(s)
    out, frontier = [], [root]
    while frontier:
        node = frontier.pop()
        for child in children.get(node.span_id, ()):
            out.append(child)
            frontier.append(child)
    return out


def test_attach_tracer_reaches_every_instrumented_layer(spec):
    fs, lld = build_minix_lld(spec)
    assert fs.store.tracer is None
    assert lld.tracer is None
    assert lld.disk.tracer is None
    tracer = Tracer(lld.disk.clock)
    attach_tracer(tracer, fs)  # one entry point, walks the containment
    assert fs.store.tracer is tracer
    assert lld.tracer is tracer
    assert lld.disk.tracer is tracer
    # Un-instrumented objects are left untouched (no new attributes).
    assert "tracer" not in vars(fs)
    # Detach restores the zero-overhead default.
    attach_tracer(None, fs)
    assert fs.store.tracer is None
    assert lld.tracer is None
    assert lld.disk.tracer is None


def test_attach_tracer_descends_through_disk_wrappers():
    disk = SimulatedDisk(hp_c3010(capacity_mb=8), VirtualClock())
    wrapper = RecordingDisk(disk)
    lld = LLD(wrapper, LLDConfig(segment_size=256 * 1024, checkpoint_slots=2))
    lld.initialize()
    tracer = Tracer(disk.clock)
    attach_tracer(tracer, lld)
    assert lld.tracer is tracer
    assert disk.tracer is tracer  # reached through wrapper.inner


def test_lld_inherits_tracer_from_disk():
    disk = SimulatedDisk(hp_c3010(capacity_mb=8), VirtualClock())
    tracer = Tracer(disk.clock)
    disk.tracer = tracer
    # A post-crash LLD built over an already-traced disk keeps tracing
    # without a second attach_tracer call.
    lld = LLD(disk, LLDConfig(segment_size=256 * 1024, checkpoint_slots=2))
    assert lld.tracer is tracer


def test_fsync_expands_into_causally_linked_span_tree(spec):
    fs, lld = build_minix_lld(spec)
    tracer = attach_tracer(Tracer(lld.disk.clock), fs)
    fsync_some_files(fs)
    spans = tracer.spans
    syncs = [s for s in spans if s.name == "fs.sync"]
    assert syncs
    # The slot's first flush writes a full image; later syncs take the
    # delta path with a data-tail write. Pick the richest tree.
    best = max(syncs, key=lambda s: len(descendants(spans, s)))
    below = descendants(spans, best)
    names = {s.name for s in below}
    assert len(below) >= 3
    assert "lld.flush" in names
    assert "lld.data_tail_write" in names
    assert "lld.summary_write" in names
    assert "disk.barrier" in names
    assert any(s.name == "disk.write" for s in below)
    # Virtual-clock containment: children within the parent's interval.
    for child in below:
        assert child.start >= best.start
        if child.end is not None:
            assert child.end <= best.end
    # Span layers cover the whole stack.
    assert {s.layer for s in spans} >= {"fs", "lld", "disk"}


def test_recovery_sweep_and_aru_events_are_traced():
    disk = SimulatedDisk(hp_c3010(capacity_mb=8), VirtualClock())
    lld = LLD(disk, LLDConfig(segment_size=256 * 1024, checkpoint_slots=2))
    lld.initialize()
    lid = lld.new_list()
    lld.begin_aru()
    bid = lld.new_block(lid, LIST_HEAD)
    lld.write(bid, b"payload")
    lld.end_aru()
    lld.flush()
    lld.crash()

    tracer = Tracer(disk.clock)
    disk.tracer = tracer
    fresh = LLD(disk, lld.config)
    fresh.initialize()
    names = [s.name for s in tracer.spans]
    assert "lld.recovery_sweep" in names
    sweep = next(s for s in tracer.spans if s.name == "lld.recovery_sweep")
    assert sweep.attrs["summaries_valid"] >= 1
    assert sweep.duration > 0
    assert fresh.read(bid).rstrip(b"\x00") == b"payload"

    tracer.clear()
    fresh.begin_aru()
    bid2 = fresh.new_block(lid, bid)
    fresh.write(bid2, b"more")
    fresh.end_aru()
    names = [s.name for s in tracer.spans]
    assert "lld.aru_begin" in names
    assert "lld.aru_end" in names


def test_default_stack_traces_nothing_and_matches_untraced_io(spec):
    plain_fs, plain_lld = build_minix_lld(spec)
    traced_fs, traced_lld = build_minix_lld(spec)
    tracer = attach_tracer(Tracer(traced_lld.disk.clock), traced_fs)

    fsync_some_files(plain_fs)
    fsync_some_files(traced_fs)

    # Tracing observes; it never perturbs simulated time or disk I/O.
    assert traced_lld.disk.clock.now == plain_lld.disk.clock.now
    assert traced_lld.disk.stats.as_dict() == plain_lld.disk.stats.as_dict()
    assert traced_lld.stats.as_dict() == plain_lld.stats.as_dict()
    assert tracer.spans  # and it did observe
