"""Snapshot protocol conformance and MetricsRegistry behaviour."""

import json

import pytest

from repro.disk.stats import DiskStats
from repro.fs.minix.store import StoreStats
from repro.lld.lld import LLDStats
from repro.lld.nvram import NVRAM
from repro.lld.recovery import RecoveryReport
from repro.obs import MetricsRegistry, Snapshot

STATS_TYPES = [DiskStats, StoreStats, LLDStats, NVRAM, RecoveryReport]


@pytest.mark.parametrize("stats_type", STATS_TYPES)
def test_stats_objects_satisfy_snapshot_protocol(stats_type):
    stats = stats_type()
    assert isinstance(stats, Snapshot)
    payload = stats.as_dict()
    assert isinstance(payload, dict)
    json.dumps(payload)  # every value is JSON-serializable


@pytest.mark.parametrize("stats_type", STATS_TYPES)
def test_snapshot_is_an_independent_copy(stats_type):
    stats = stats_type()
    before = stats.snapshot()
    assert before is not stats
    assert before.as_dict() == stats.as_dict()
    # Mutating the original must not change the snapshot.
    field = next(
        k for k, v in vars(stats).items() if isinstance(v, int) and not k.startswith("_")
    )
    setattr(stats, field, getattr(stats, field) + 7)
    assert before.as_dict() != stats.as_dict()


def test_registry_collect_prefixes_layers():
    registry = MetricsRegistry()
    disk = DiskStats()
    disk.record_request(8, write=True)
    registry.register("disk", disk)
    registry.register("derived", lambda: {"gauge": 42})
    merged = registry.collect()
    assert merged["disk.writes"] == 1
    assert merged["disk.sectors_written"] == 8
    assert merged["derived.gauge"] == 42
    assert all("." in key for key in merged)


def test_registry_collect_ordering_is_deterministic():
    registry = MetricsRegistry()
    registry.register("zeta", lambda: {"b": 2, "a": 1})
    registry.register("alpha", lambda: {"z": 26, "m": 13})
    keys = list(registry.collect())
    assert keys == ["alpha.m", "alpha.z", "zeta.a", "zeta.b"]
    nested = registry.collect_nested()
    assert list(nested) == ["alpha", "zeta"]
    assert list(nested["zeta"]) == ["a", "b"]


def test_registry_rejects_bad_layers_and_sources():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.register("", DiskStats())
    with pytest.raises(ValueError):
        registry.register("disk.sub", DiskStats())
    with pytest.raises(TypeError):
        registry.register("disk", object())
    registry.register("disk", DiskStats())
    with pytest.raises(ValueError):
        registry.register("disk", DiskStats())  # duplicate


def test_registry_membership_and_unregister():
    registry = MetricsRegistry()
    registry.register("disk", DiskStats())
    assert "disk" in registry
    assert registry.layers == ["disk"]
    registry.unregister("disk")
    assert "disk" not in registry
    with pytest.raises(KeyError):
        registry.unregister("disk")


def test_registry_rejects_non_dict_payload_at_collect():
    registry = MetricsRegistry()
    registry.register("bad", lambda: [1, 2, 3])
    with pytest.raises(TypeError):
        registry.collect()


def test_disk_stats_bytes_follow_sector_size():
    for sector_size in (512, 1024, 4096):
        stats = DiskStats(sector_size=sector_size)
        stats.record_request(3, write=False)
        stats.record_request(5, write=True)
        assert stats.bytes_read == 3 * sector_size
        assert stats.bytes_written == 5 * sector_size
        payload = stats.as_dict()
        assert payload["sector_size"] == sector_size
        assert payload["bytes_written"] == 5 * sector_size
        assert stats.snapshot().sector_size == sector_size


def test_diff_payloads_subtracts_counters_and_recurses():
    from repro.obs.metrics import diff_payloads

    before = {"reads": 10, "nested": {"hits": 3}, "label": "raid5", "flag": False}
    after = {"reads": 25, "nested": {"hits": 8, "misses": 2}, "label": "raid5", "flag": True}
    window = diff_payloads(before, after)
    assert window["reads"] == 15
    assert window["nested"] == {"hits": 5, "misses": 2}
    assert window["label"] == "raid5"  # non-numerics pass through from after
    assert window["flag"] is True  # bools are state, not counters
    assert "gone" not in diff_payloads({"gone": 4}, {})  # before-only keys drop


def test_diff_payloads_merge_subtracts_histograms():
    from repro.obs.hist import LatencyHistogram
    from repro.obs.metrics import diff_payloads

    hist = LatencyHistogram()
    hist.record(0.001)
    before = {"lat": hist.as_dict()}
    hist.record(0.500)
    hist.record(0.600)
    window = diff_payloads(before, {"lat": hist.as_dict()})
    assert window["lat"]["count"] == 2
    # The window's quantiles describe only the two slow post-snapshot samples.
    assert window["lat"]["p50"] > 0.1
    # A histogram with no prior snapshot passes through whole.
    fresh = diff_payloads({}, {"lat": hist.as_dict()})
    assert fresh["lat"]["count"] == 3


def test_registry_collect_delta_yields_the_window():
    registry = MetricsRegistry()
    disk = DiskStats()
    registry.register("disk", disk)
    disk.record_request(8, write=True)
    before = registry.collect()
    disk.record_request(4, write=True)
    disk.record_request(2, write=False)
    window = registry.collect_delta(before)
    assert window["disk.writes"] == 1
    assert window["disk.reads"] == 1
    assert window["disk.sectors_written"] == 4
