"""SeriesRecorder: interval gating, flattening, windows, JSONL round-trip."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.series import (
    Series,
    SeriesRecorder,
    _flatten_numeric,
    export_series_jsonl,
    load_series_jsonl,
)
from repro.sim import VirtualClock


def test_tick_samples_only_when_interval_elapsed():
    clock = VirtualClock()
    recorder = SeriesRecorder(clock, interval=0.1)
    recorder.track("gauge", lambda: 42.0)
    assert recorder.due
    assert recorder.tick()  # first tick always fires
    assert not recorder.due
    assert not recorder.tick()  # clock hasn't moved
    clock.advance(0.05)
    assert not recorder.tick()  # interval not reached
    clock.advance(0.06)
    assert recorder.due
    assert recorder.tick()
    assert recorder.samples_taken == 2
    assert recorder["gauge"].values() == [42.0, 42.0]


def test_constructor_validation():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        SeriesRecorder(clock, interval=0.0)
    with pytest.raises(ValueError):
        SeriesRecorder(clock, capacity=1)


def test_rings_are_bounded_by_capacity():
    clock = VirtualClock()
    recorder = SeriesRecorder(clock, interval=0.01, capacity=4)
    counter = iter(range(100))
    recorder.track("n", lambda: next(counter))
    for _ in range(10):
        clock.advance(0.02)
        recorder.tick()
    assert len(recorder["n"]) == 4
    assert recorder["n"].values() == [6.0, 7.0, 8.0, 9.0]


def test_window_delta_and_rate():
    series = Series("x", capacity=16)
    for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 60.0)]:
        series.record(t, v)
    assert series.latest == 60.0
    assert series.latest_time == 2.0
    assert series.window(1.0) == [(1.0, 20.0), (2.0, 60.0)]
    assert series.delta() == 50.0
    assert series.delta(1.0) == 40.0
    assert series.rate() == 25.0  # 50 over 2 virtual seconds
    assert series.rate(1.0) == 40.0
    # Degenerate cases: too few points, zero time span.
    assert Series("y", 4).rate() == 0.0
    flat = Series("z", 4)
    flat.record(1.0, 5.0)
    flat.record(1.0, 9.0)
    assert flat.rate() == 0.0


def test_flatten_numeric_handles_nesting_int_keys_and_buckets():
    flat = {}
    _flatten_numeric(
        "",
        {
            "lld": {
                "flushes": 3,
                "write_amplification": 1.5,
                "degraded": True,  # bools are not series
                "layout": "raid5",  # strings skipped
                "coalesced_runs": {1: 7, 8: 2},  # int keys coerced
                "hist": {"count": 4, "p99": 0.5, "buckets": {"16": 4}},
            }
        },
        flat,
    )
    assert flat["lld.flushes"] == 3
    assert flat["lld.write_amplification"] == 1.5
    assert flat["lld.coalesced_runs.1"] == 7
    assert flat["lld.hist.p99"] == 0.5
    assert "lld.degraded" not in flat
    assert "lld.layout" not in flat
    # Per-bucket series would be noise; the quantiles ride alongside.
    assert not any("buckets" in key for key in flat)


def test_track_registry_with_key_filter():
    clock = VirtualClock()
    registry = MetricsRegistry()
    registry.register("disk", lambda: {"reads": 5, "writes": 9})
    recorder = SeriesRecorder(clock, interval=0.01)
    recorder.track_registry(registry, keys=["disk.reads"])
    recorder.sample()
    assert recorder.names == ["disk.reads"]
    predicate = SeriesRecorder(clock, interval=0.01)
    predicate.track_registry(registry, keys=lambda name: name.endswith("writes"))
    predicate.sample()
    assert predicate.names == ["disk.writes"]


def test_record_flat_shares_a_precollected_payload():
    clock = VirtualClock()
    recorder = SeriesRecorder(clock, interval=0.01)
    clock.advance(2.0)
    recorder.record_flat({"a": 1.0, "b": 2.0})
    assert recorder.samples_taken == 1
    assert recorder["a"].latest_time == 2.0
    assert not recorder.due  # record_flat counts as the interval sample


def test_jsonl_round_trip(tmp_path):
    clock = VirtualClock()
    recorder = SeriesRecorder(clock, interval=0.01)
    value = iter([1.0, 4.0, 9.0])
    recorder.track("sq", lambda: next(value))
    for _ in range(3):
        clock.advance(0.02)
        recorder.tick()
    path = tmp_path / "series.jsonl"
    export_series_jsonl(recorder, path)
    loaded = load_series_jsonl(path)
    assert list(loaded) == ["sq"]
    assert loaded["sq"].values() == [1.0, 4.0, 9.0]
    assert loaded["sq"].latest_time == pytest.approx(0.06)
