"""ldtop rendering and the offline ``python -m repro.obs.top`` CLI."""

import json

import pytest

from repro.obs import MetricsRegistry, Monitor
from repro.obs.events import EventLog, export_events_jsonl
from repro.obs.hist import LatencyHistogram
from repro.obs.series import SeriesRecorder, export_series_jsonl
from repro.obs.top import _load_metrics, main, render_monitor, render_top
from repro.sim import VirtualClock


def sample_payload():
    hist = LatencyHistogram()
    for v in (0.010, 0.020, 0.080):
        hist.record(v)
    return {
        "volume": {
            "reads": 3,
            "live_disks": 3,
            "n_disks": 4,
            "rebuild_active": False,
            "read_latency_hist": hist.as_dict(),
        },
        "disk": {"reads": 12, "writes": 7},
    }


def make_recorder():
    clock = VirtualClock()
    recorder = SeriesRecorder(clock, interval=0.1)
    counter = iter(range(0, 100, 10))
    recorder.track("disk.reads", lambda: next(counter))
    for _ in range(4):
        clock.advance(0.2)
        recorder.tick()
    return recorder


def test_render_top_shows_all_sections():
    events = EventLog()
    events.emit("volume.member_failed", severity="warn", t=0.5, member=1)
    text = render_top(
        sample_payload(),
        series=make_recorder(),
        events=events,
        findings=[],
    )
    assert "ldtop —" in text
    assert "== rates (windowed, per simulated second) ==" in text
    assert "disk.reads" in text
    assert "== latency quantiles (bounded histograms, ms simulated) ==" in text
    assert "volume.read_latency_hist" in text
    assert "== health ==" in text
    assert "all ok" in text
    assert "== recent events" in text
    assert "volume.member_failed" in text


def test_render_top_falls_back_to_totals_without_series():
    text = render_top(sample_payload())
    assert "== totals (no series data; rates unavailable) ==" in text
    assert "disk.reads" in text
    assert "rates" not in text.split("totals")[0]


def test_render_top_empty_inputs():
    text = render_top()
    assert "t=0.000000s simulated" in text
    assert "==" not in text  # no sections without data


def test_render_top_active_findings_sort_critical_first():
    from repro.obs.health import Finding

    findings = [
        Finding(rule="slo_burn", status="warn", detail="over", subject="a"),
        Finding(rule="volume_degraded", status="critical", detail="down"),
        Finding(rule="free_segments", status="ok", detail="fine"),
    ]
    text = render_top(findings=findings)
    health = text.split("== health ==")[1]
    assert health.index("CRITICAL") < health.index("WARN")
    assert "free_segments" not in health  # ok verdicts are not noise


def test_render_monitor_over_a_live_monitor():
    clock = VirtualClock()
    registry = MetricsRegistry()
    registry.register(
        "volume",
        lambda: {"live_disks": 2, "n_disks": 4, "rebuild_active": False},
    )
    monitor = Monitor(registry, clock, interval=0.1)
    monitor.sample_now()
    text = render_monitor(monitor)
    assert "CRITICAL" in text
    assert "volume_degraded" in text
    assert "health.volume_degraded" in text  # transition event in the tail


def test_load_metrics_normalizes_flat_payloads(tmp_path):
    nested = tmp_path / "nested.json"
    nested.write_text(json.dumps({"disk": {"reads": 1}}))
    assert _load_metrics(nested) == {"disk": {"reads": 1}}
    flat = tmp_path / "flat.json"
    flat.write_text(json.dumps({"disk.reads": 1, "disk.writes": 2, "loose": 3}))
    assert _load_metrics(flat) == {"disk": {"reads": 1, "writes": 2}, "loose": 3}
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([1, 2]))
    with pytest.raises(ValueError):
        _load_metrics(bad)


def test_cli_offline_round_trip(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps(sample_payload()))
    events = EventLog()
    events.emit("volume.member_failed", severity="warn", t=0.5, member=1)
    events_path = tmp_path / "events.jsonl"
    export_events_jsonl(events, events_path)
    series_path = tmp_path / "series.jsonl"
    export_series_jsonl(make_recorder(), series_path)

    assert (
        main(
            [
                "--metrics",
                str(metrics),
                "--events",
                str(events_path),
                "--series",
                str(series_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    # Health rules re-evaluated offline: the degraded volume is caught.
    assert "CRITICAL" in out
    assert "volume_degraded" in out
    assert "volume.read_latency_hist" in out
    assert "disk.reads" in out
    assert "volume.member_failed" in out


def test_cli_events_only(tmp_path, capsys):
    events = EventLog()
    events.emit("lld.cleaner_pass", severity="debug", t=1.0, slot=3)
    path = tmp_path / "events.jsonl"
    export_events_jsonl(events, path)
    assert main(["--events", str(path), "--max-events", "5"]) == 0
    out = capsys.readouterr().out
    assert "lld.cleaner_pass" in out
    assert "t=1.000000s" in out


def test_cli_requires_at_least_one_input():
    with pytest.raises(SystemExit):
        main([])
