"""Tracer semantics: causality, virtual-clock stamps, and the off path."""

import pytest

from repro.obs import NULL_SPAN, Tracer
from repro.obs.trace import _NullSpan
from repro.sim import VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


def test_span_records_virtual_time(tracer, clock):
    clock.advance(1.5)
    with tracer.span("disk.read", lba=7) as span:
        clock.advance(0.25)
    assert span.start == 1.5
    assert span.end == 1.75
    assert span.duration == 0.25
    assert span.attrs == {"lba": 7}
    assert span.name == "disk.read"
    assert span.layer == "disk"
    assert tracer.spans == [span]


def test_nesting_links_parent_to_child(tracer):
    with tracer.span("fs.sync") as parent:
        with tracer.span("lld.flush") as child:
            with tracer.span("disk.write") as grandchild:
                pass
    assert parent.parent_id is None
    assert child.parent_id == parent.span_id
    assert grandchild.parent_id == child.span_id
    # Completion order: innermost closes first.
    assert [s.name for s in tracer.spans] == ["disk.write", "lld.flush", "fs.sync"]


def test_siblings_share_a_parent(tracer):
    with tracer.span("fs.sync") as parent:
        with tracer.span("lld.flush") as first:
            pass
        with tracer.span("lld.flush") as second:
            pass
    assert first.parent_id == parent.span_id
    assert second.parent_id == parent.span_id
    assert first.span_id != second.span_id


def test_current_tracks_the_open_span(tracer):
    assert tracer.current is None
    with tracer.span("fs.sync") as outer:
        assert tracer.current is outer
        with tracer.span("lld.flush") as inner:
            assert tracer.current is inner
        assert tracer.current is outer
    assert tracer.current is None


def test_instant_is_zero_duration_and_causally_linked(tracer, clock):
    clock.advance(2.0)
    with tracer.span("lld.flush") as parent:
        event = tracer.instant("disk.barrier", label="flush")
    assert event.start == event.end == 2.0
    assert event.duration == 0.0
    assert event.parent_id == parent.span_id
    assert event.attrs == {"label": "flush"}


def test_exception_closes_span_and_tags_error(tracer, clock):
    with pytest.raises(ValueError):
        with tracer.span("lld.write") as span:
            clock.advance(0.1)
            raise ValueError("boom")
    assert span.end == span.start + 0.1
    assert span.attrs["error"] == "ValueError"
    assert tracer.current is None
    assert tracer.spans == [span]


def test_disabled_tracer_is_falsy_and_records_nothing(clock):
    tracer = Tracer(clock, enabled=False)
    assert not tracer
    assert tracer.span("disk.read") is NULL_SPAN
    assert tracer.instant("disk.barrier") is None
    with tracer.span("disk.read") as span:
        pass
    assert span is None
    assert tracer.spans == []
    assert Tracer(clock)  # enabled is truthy


def test_null_span_is_a_shared_stateless_noop():
    assert isinstance(NULL_SPAN, _NullSpan)
    with NULL_SPAN as a:
        with NULL_SPAN as b:  # re-entrant: same object, no state
            assert a is None and b is None
    with pytest.raises(RuntimeError):
        with NULL_SPAN:
            raise RuntimeError("not swallowed")


def test_clear_drops_finished_spans(tracer):
    with tracer.span("fs.sync"):
        pass
    assert tracer.spans
    tracer.clear()
    assert tracer.spans == []
    # Causality still works after clear.
    with tracer.span("fs.sync") as parent:
        with tracer.span("lld.flush") as child:
            pass
    assert child.parent_id == parent.span_id
