"""Shared helpers for scheduler tests: a small LLD behind an LDServer."""

from repro.disk import SimulatedDisk, fast_test_disk
from repro.ld.hints import LIST_HEAD
from repro.lld import LLD
from repro.sched import LDServer
from repro.sim import VirtualClock

from tests.lld.conftest import small_config


def make_server(
    scheduler=None,
    *,
    group_commit: int = 1,
    record_dispatch: bool = False,
    capacity_mb: int = 4,
    **config_overrides,
):
    """A fresh LLD on a fresh disk, wrapped in an LDServer."""
    disk = SimulatedDisk(fast_test_disk(capacity_mb=capacity_mb), VirtualClock())
    lld = LLD(disk, small_config(**config_overrides))
    lld.initialize()
    server = LDServer(
        lld,
        scheduler,
        group_commit=group_commit,
        record_dispatch=record_dispatch,
    )
    return server, lld


def reopen_after_crash(lld: LLD) -> LLD:
    """Crash the LLD and recover a fresh instance on the same disk."""
    lld.crash()
    fresh = LLD(lld.disk, lld.config)
    fresh.initialize()
    return fresh


def populate(session, n: int, *, size: int = 1024, tag: str = "blk"):
    """A fresh list with ``n`` written blocks; returns ``(lid, bids)``."""
    lid = session.new_list()
    bids = []
    pred = LIST_HEAD
    for i in range(n):
        bid = session.new_block(lid, pred)
        session.write(bid, f"{tag}-{i:04d}:".encode().ljust(size, b"."))
        bids.append(bid)
        pred = bid
    return lid, bids
