"""Crash-matrix exploration with the scheduler in the write path.

The multi-tenant generalization of ``tests/lld/test_crashsim.py``: two
tenant sessions drive one LLD through an :class:`~repro.sched.LDServer`
(deferrable flush intents pooling in the cross-tenant group commit,
interleaved ARUs, an aborted ARU), a :class:`RecordingDisk` journals
every sector write, and every enumerated crash image must recover to
*some* acknowledged global snapshot — queueing and group commit must not
open any new crash window.
"""

from repro.bench import make_scheduler
from repro.crashsim import (
    CrashStateEnumerator,
    LLDCrashChecker,
    MultiTenantOracleDriver,
    RecordingDisk,
    run_multitenant_matrix_workload,
)
from repro.disk import SimulatedDisk, fast_test_disk
from repro.lld import LLD
from repro.sched import LDServer
from repro.sim import VirtualClock

from tests.lld.conftest import small_config


def recorded_server(scheduler_name="qos", *, group_commit=1):
    config = small_config(torn_write_protection=True)
    disk = SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
    recording = RecordingDisk(disk)
    lld = LLD(recording, config)
    lld.initialize()
    server = LDServer(
        lld, make_scheduler(scheduler_name), group_commit=group_commit
    )
    return server, lld, recording


def explore(scheduler_name: str, group_commit: int, **workload_kw):
    server, lld, recording = recorded_server(
        scheduler_name, group_commit=group_commit
    )
    a = server.open_session("a")
    b = server.open_session("b")
    driver = MultiTenantOracleDriver(server, recording)
    run_multitenant_matrix_workload(driver, a, b, **workload_kw)
    enum = CrashStateEnumerator(recording)
    checker = LLDCrashChecker(lld.config, driver.oracle)
    return enum.explore(checker), driver, recording


class TestSchedulerCrashMatrix:
    def test_qos_with_group_commit_has_no_violations(self):
        report, driver, _recording = explore("qos", group_commit=2)
        assert report.states_total > 100
        assert report.states_by_kind.get("prefix", 0) > 0
        assert report.states_by_kind.get("torn", 0) > 0
        assert report.states_by_kind.get("reorder", 0) > 0
        assert report.violations == []
        # The group commit actually deferred intents (the workload's
        # pooled rounds), so the zero-violation run exercised it.
        assert driver.server.stats.flushes_deferred > 0
        assert driver.server.stats.group_commits > 0

    def test_fifo_baseline_has_no_violations(self):
        report, _driver, _recording = explore(
            "fifo", group_commit=1, n_small=3, generations=2, n_fill=4
        )
        assert report.states_total > 50
        assert report.violations == []

    def test_acks_land_on_barrier_positions(self):
        _report, driver, recording = explore("qos", group_commit=2)
        boundary_positions = {b.position for b in recording.barriers}
        assert len(driver.oracle.points) > 10
        assert all(
            p.seq in boundary_positions for p in driver.oracle.points
        )
