"""Property tests: dispatch is a program-order-preserving permutation.

The scheduler contract, checked against randomly generated multi-tenant
scripts on both shipped policies:

* every submitted op is dispatched exactly once (a permutation);
* each tenant's ops dispatch in submission order (program order);
* a group commit never crosses a barrier epoch: when an intent batch
  commits, every earlier op of every committed tenant has already been
  dispatched.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.sched.conftest import make_server, populate

KINDS = ("write", "read", "read_blocks", "flush", "flush_force", "meta")


@st.composite
def scripts(draw):
    n_tenants = draw(st.integers(min_value=2, max_value=4))
    per_tenant = [
        draw(st.lists(st.sampled_from(KINDS), min_size=1, max_size=10))
        for _ in range(n_tenants)
    ]
    # A submission interleaving: which tenant submits its next op.
    order = []
    remaining = [len(script) for script in per_tenant]
    while any(remaining):
        runnable = [i for i, left in enumerate(remaining) if left]
        i = draw(st.sampled_from(runnable))
        order.append(i)
        remaining[i] -= 1
    weights = [
        draw(st.sampled_from([0.5, 1.0, 2.0, 4.0])) for _ in range(n_tenants)
    ]
    caps = [
        draw(st.sampled_from([None, 8192.0])) for _ in range(n_tenants)
    ]
    scheduler = draw(st.sampled_from(["fifo", "qos"]))
    group_commit = draw(st.integers(min_value=1, max_value=3))
    return per_tenant, order, weights, caps, scheduler, group_commit


def run_script(per_tenant, order, weights, caps, scheduler_name, group_commit):
    from repro.bench import make_scheduler

    server, _lld = make_server(
        make_scheduler(scheduler_name),
        group_commit=group_commit,
        record_dispatch=True,
    )
    sessions = []
    setup = []
    for i, (weight, cap) in enumerate(zip(weights, caps)):
        sess = server.open_session(
            f"t{i}", weight=weight, rate_bytes_per_sec=cap
        )
        lid, bids = populate(sess, 3, size=512, tag=f"t{i}")
        sessions.append((sess, lid, bids))
        setup.append(sess._seq)  # seqs consumed by the blocking setup
    mark = len(server.dispatch_log)
    cursors = [0] * len(sessions)
    submitted = []
    for i in order:
        sess, lid, bids = sessions[i]
        kind = per_tenant[i][cursors[i]]
        cursors[i] += 1
        k = cursors[i]
        if kind == "write":
            submitted.append(sess.submit_write(bids[k % 3], b"w" * 1024))
        elif kind == "read":
            submitted.append(sess.submit_read(bids[k % 3]))
        elif kind == "read_blocks":
            submitted.append(sess.submit_read_blocks(bids[:2]))
        elif kind == "flush":
            submitted.append(sess.submit_flush(force=False))
        elif kind == "flush_force":
            submitted.append(sess.submit_flush(force=True))
        else:
            submitted.append(sess.submit_call("list_length", lid))
    server.drain()
    server.close()
    return server, submitted, mark, setup


@given(scripts())
@settings(max_examples=40, deadline=None)
def test_dispatch_invariants(script):
    per_tenant, order, weights, caps, scheduler, group_commit = script
    server, submitted, mark, _setup = run_script(
        per_tenant, order, weights, caps, scheduler, group_commit
    )
    events = server.dispatch_log[mark:]
    submits = [(e[1], e[2]) for e in events if e[0] == "submit"]
    dispatches = [(e[1], e[2]) for e in events if e[0] == "dispatch"]

    # Permutation: every submitted op dispatched exactly once.
    assert Counter(dispatches) == Counter(submits)
    assert all(op.done for op in submitted)
    assert all(op.error is None for op in submitted)

    # Program order: per-tenant dispatch seqs strictly increase.
    per_tenant_seqs: dict[str, list[int]] = {}
    for tenant, seq in dispatches:
        per_tenant_seqs.setdefault(tenant, []).append(seq)
    for seqs in per_tenant_seqs.values():
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    # Barrier epochs: at each commit, every earlier op of every committed
    # tenant has already been dispatched.
    phase_seqs: dict[str, set[int]] = {}
    for tenant, seq in submits:
        phase_seqs.setdefault(tenant, set()).add(seq)
    dispatched_so_far: dict[str, set[int]] = {}
    for event in events:
        if event[0] == "dispatch":
            dispatched_so_far.setdefault(event[1], set()).add(event[2])
        elif event[0] == "commit":
            for tenant, seq in event[1]:
                earlier = {s for s in phase_seqs.get(tenant, ()) if s < seq}
                missing = earlier - dispatched_so_far.get(tenant, set())
                assert not missing, (
                    f"commit of {tenant}/{seq} crossed undispatched "
                    f"ops {sorted(missing)}"
                )

    # Accounting closes: nothing queued, nothing pending.
    assert server.queued == 0
    assert server.pending_intents == 0
    assert server.stats.ops_submitted == server.stats.ops_dispatched


@given(scripts())
@settings(max_examples=15, deadline=None)
def test_results_are_independent_of_policy(script):
    """Both policies drain any script to the same per-op results."""
    per_tenant, order, weights, caps, _scheduler, group_commit = script
    outcomes = []
    for name in ("fifo", "qos"):
        _server, submitted, _mark, _setup = run_script(
            per_tenant, order, weights, caps, name, group_commit
        )
        outcomes.append(
            [
                op.result if op.kind != "flush" else None
                for op in submitted
            ]
        )
    assert outcomes[0] == outcomes[1]
