"""Dispatch policies: FIFO ordering, DRR fairness, rate caps, elevator."""

from repro.sched import FIFOScheduler, QoSElevatorScheduler

from tests.sched.conftest import make_server, populate


# ----------------------------------------------------------------------
# FIFO baseline
# ----------------------------------------------------------------------


class TestFIFO:
    def test_global_arrival_order(self):
        server, _lld = make_server(FIFOScheduler(), record_dispatch=True)
        a = server.open_session("a")
        b = server.open_session("b")
        _lid_a, bids_a = populate(a, 2)
        _lid_b, bids_b = populate(b, 2, tag="bee")
        mark = len(server.dispatch_log)
        submitted = [
            a.submit_write(bids_a[0], b"w" * 512),
            b.submit_write(bids_b[0], b"w" * 512),
            a.submit_read(bids_a[1]),
            b.submit_read(bids_b[1]),
            a.submit_read_blocks(bids_a),
            b.submit_write(bids_b[1], b"w" * 512),
        ]
        server.drain()
        events = server.dispatch_log[mark:]
        dispatches = [e for e in events if e[0] == "dispatch"]
        assert [(e[1], e[2]) for e in dispatches] == [
            (op.tenant, op.seq) for op in submitted
        ]
        # One op per round, no merging.
        assert server.stats.read_batches == 0
        assert all(op.done and op.error is None for op in submitted)

    def test_step_returns_zero_when_idle(self):
        server, _lld = make_server(FIFOScheduler())
        server.open_session("a")
        assert server.step() == 0


# ----------------------------------------------------------------------
# DRR fairness
# ----------------------------------------------------------------------


class TestDRRFairness:
    def test_weights_split_one_round_proportionally(self):
        server, _lld = make_server(QoSElevatorScheduler(), capacity_mb=8)
        a = server.open_session("a", weight=4.0)
        b = server.open_session("b", weight=1.0)
        _lid_a, bids_a = populate(a, 1, size=16)
        _lid_b, bids_b = populate(b, 1, size=16, tag="bee")
        wa, wb = a._queue.stats.writes, b._queue.stats.writes
        for _ in range(100):
            a.submit_write(bids_a[0], b"A" * 4096)
            b.submit_write(bids_b[0], b"B" * 4096)
        server.step()
        # quantum=64 KB, weight 4 vs 1: 256 KB vs 64 KB of 4 KB writes.
        assert a._queue.stats.writes - wa == 64
        assert b._queue.stats.writes - wb == 16
        server.drain()
        assert a._queue.stats.writes - wa == 100
        assert b._queue.stats.writes - wb == 100

    def test_idle_tenants_bank_no_deficit(self):
        server, _lld = make_server(QoSElevatorScheduler())
        a = server.open_session("a")
        server.open_session("idle")
        _lid, bids = populate(a, 1, size=16)
        for _ in range(5):
            server.step()  # idle rounds must not accumulate credit
        assert server.tenants["idle"].deficit == 0.0
        a.submit_write(bids[0], b"w" * 512)
        server.drain()
        assert server.tenants["a"].deficit == 0.0


# ----------------------------------------------------------------------
# Token-bucket rate caps
# ----------------------------------------------------------------------


class TestRateCaps:
    def test_capped_tenant_is_throttled_but_work_conserving(self):
        server, _lld = make_server(QoSElevatorScheduler())
        slow = server.open_session("slow", rate_bytes_per_sec=1024.0)
        _lid, bids = populate(slow, 1, size=16)
        ops = [slow.submit_write(bids[0], b"s" * 4096) for _ in range(40)]
        server.drain()
        # Writes absorb into the open segment without disk time passing,
        # so a strict cap would freeze the clock: the override keeps the
        # queue moving and is counted.
        assert all(op.done and op.error is None for op in ops)
        assert server.stats.rate_cap_overrides > 0
        assert slow._queue.stats.rate_limited > 0
        assert server.stats.rate_limited == slow._queue.stats.rate_limited

    def test_uncapped_tenant_races_ahead_of_capped(self):
        server, _lld = make_server(QoSElevatorScheduler())
        slow = server.open_session("slow", rate_bytes_per_sec=1024.0)
        fast = server.open_session("fast")
        _lid_s, bids_s = populate(slow, 1, size=16)
        _lid_f, bids_f = populate(fast, 1, size=16, tag="eff")
        for _ in range(30):
            slow.submit_write(bids_s[0], b"s" * 4096)
            fast.submit_write(bids_f[0], b"f" * 4096)
            fast.submit_write(bids_f[0], b"f" * 4096)
        ws, wf = slow._queue.stats.writes, fast._queue.stats.writes
        for _ in range(2):
            server.step()
        assert fast._queue.stats.writes - wf > slow._queue.stats.writes - ws
        assert slow._queue.stats.rate_limited > 0
        server.drain()
        assert server.queued == 0


# ----------------------------------------------------------------------
# Elevator read batching
# ----------------------------------------------------------------------


class TestElevator:
    def test_cross_tenant_reads_merge_into_one_batch(self):
        server, _lld = make_server(QoSElevatorScheduler())
        a = server.open_session("a")
        b = server.open_session("b")
        _lid_a, bids_a = populate(a, 2)
        _lid_b, bids_b = populate(b, 2, tag="bee")
        batches = server.stats.read_batches
        ops = [
            a.submit_read(bids_a[0]),
            a.submit_read(bids_a[1]),
            b.submit_read(bids_b[0]),
            b.submit_read(bids_b[1]),
        ]
        dispatched = server.step()
        assert dispatched == 4
        assert server.stats.read_batches == batches + 1
        assert server.stats.batched_reads == 4
        assert [op.result[:3] for op in ops[:2]] == [b"blk", b"blk"]
        assert [op.result[:3] for op in ops[2:]] == [b"bee", b"bee"]

    def test_batch_is_elevator_sorted_by_placement(self):
        server, lld = make_server(QoSElevatorScheduler(), record_dispatch=True)
        writer = server.open_session("w")
        # Enough data to seal segments so blocks gain durable locations.
        _lid, bids = populate(writer, 40, size=4096)
        writer.flush()
        placed = [(lld.placement_hint(bid), bid) for bid in bids]
        placed = [(h, bid) for h, bid in placed if h is not None]
        assert len(placed) >= 4, "need sealed blocks for elevator hints"
        placed.sort()
        chosen = [placed[0], placed[len(placed) // 3], placed[2 * len(placed) // 3], placed[-1]]
        # Four tenants submit one read each, in *descending* LBA order.
        readers = [server.open_session(f"r{i}") for i in range(4)]
        mark = len(server.dispatch_log)
        elevator = server.stats.elevator_batches
        for sess, (_hint, bid) in zip(readers, reversed(chosen)):
            sess.submit_read(bid)
        server.step()
        assert server.stats.elevator_batches == elevator + 1
        dispatches = [e for e in server.dispatch_log[mark:] if e[0] == "dispatch"]
        # The batch completes in ascending (spindle, LBA) order: r3..r0.
        assert [e[1] for e in dispatches] == ["r3", "r2", "r1", "r0"]

    def test_read_batch_limit_bounds_one_batch(self):
        server, _lld = make_server(
            QoSElevatorScheduler(read_batch_limit=4)
        )
        a = server.open_session("a")
        _lid, bids = populate(a, 8)
        ops = [a.submit_read(bid) for bid in bids]
        server.step()
        done = [op for op in ops if op.done]
        assert len(done) == 4  # the limit, not the whole queue
        server.drain()
        assert all(op.done for op in ops)

    def test_later_write_never_passes_own_batched_read(self):
        server, _lld = make_server(QoSElevatorScheduler(), record_dispatch=True)
        a = server.open_session("a")
        _lid, bids = populate(a, 2)
        mark = len(server.dispatch_log)
        read = a.submit_read(bids[0])
        write = a.submit_write(bids[0], b"after" * 102)
        server.drain()
        events = [
            (e[1], e[2]) for e in server.dispatch_log[mark:] if e[0] == "dispatch"
        ]
        assert events.index((read.tenant, read.seq)) < events.index(
            (write.tenant, write.seq)
        )
        assert read.result.startswith(b"blk"), "read saw pre-write content"
