"""LDServer + TenantSession behaviour: facade, group commit, ARUs, stats."""

import pytest

from repro.disk import SimulatedDisk, fast_test_disk
from repro.ld.errors import ARUError, LDError, NoSuchBlockError
from repro.lld import LLD
from repro.sched import LDServer, QoSElevatorScheduler
from repro.sim import VirtualClock

from tests.lld.conftest import small_config
from tests.sched.conftest import make_server, populate, reopen_after_crash


# ----------------------------------------------------------------------
# The blocking session facade
# ----------------------------------------------------------------------


class TestSessionFacade:
    def test_write_read_roundtrip(self):
        server, lld = make_server()
        sess = server.open_session("a")
        lid, bids = populate(sess, 3)
        assert sess.read(bids[0]).startswith(b"blk-0000")
        # The session drives the same LD the server owns.
        assert lld.read(bids[0]) == sess.read(bids[0])

    def test_vectored_read_blocks(self):
        server, _lld = make_server()
        sess = server.open_session("a")
        _lid, bids = populate(sess, 4)
        datas = sess.read_blocks(bids)
        assert [d[:8] for d in datas] == [
            f"blk-{i:04d}".encode() for i in range(4)
        ]

    def test_metadata_ops_route_through_the_queue(self):
        server, _lld = make_server()
        sess = server.open_session("a")
        lid, bids = populate(sess, 3)
        assert sess.list_blocks(lid) == bids
        assert sess.list_length(lid) == 3
        assert sess.block_at(lid, 1) == bids[1]
        sess.delete_block(bids[1], lid)
        assert sess.list_blocks(lid) == [bids[0], bids[2]]
        assert [d[:3] for d in sess.read_list(lid)] == [b"blk", b"blk"]

    def test_errors_propagate_and_session_stays_usable(self):
        server, _lld = make_server()
        sess = server.open_session("a")
        _lid, bids = populate(sess, 1)
        with pytest.raises(NoSuchBlockError):
            sess.read(999_999)
        # The failed op did not wedge the queue.
        assert sess.read(bids[0]).startswith(b"blk")
        assert server.queued == 0

    def test_initialize_is_refused(self):
        server, _lld = make_server()
        sess = server.open_session("a")
        with pytest.raises(LDError):
            sess.initialize()

    def test_attribute_fallthrough_to_the_lld(self):
        server, lld = make_server()
        sess = server.open_session("a")
        assert sess.stats is lld.stats
        assert sess.layout is lld.layout
        assert sess.disk is lld.disk

    def test_duplicate_session_name_rejected(self):
        server, _lld = make_server()
        server.open_session("a")
        with pytest.raises(ValueError):
            server.open_session("a")


# ----------------------------------------------------------------------
# Single-tenant identity: a session is figure-identical to a bare LLD
# ----------------------------------------------------------------------


def run_reference_workload(ld):
    lid, bids = populate(ld, 8, size=2048)
    ld.flush()
    for bid in bids[:4]:
        ld.write(bid, b"over" * 512)
    ld.flush()
    assert [len(d) for d in ld.read_blocks(bids)] == [2048] * 4 + [2048] * 4
    for bid in bids:
        ld.read(bid)
    return lid, bids


class TestSingleTenantIdentity:
    def test_session_matches_bare_lld_figures(self):
        bare = LLD(
            SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock()),
            small_config(),
        )
        bare.initialize()
        run_reference_workload(bare)

        server, routed = make_server(QoSElevatorScheduler())
        sess = server.open_session("solo")
        run_reference_workload(sess)

        want = bare.stats.as_dict()
        got = routed.stats.as_dict()
        # Per-tenant attribution is additive bookkeeping, not behaviour.
        want.pop("tenants")
        got.pop("tenants")
        assert got == want
        assert routed.disk.stats.as_dict() == bare.disk.stats.as_dict()

    def test_populate_is_drained_between_ops(self):
        server, _lld = make_server()
        sess = server.open_session("solo")
        populate(sess, 2)
        assert server.queued == 0
        assert server.stats.ops_submitted == server.stats.ops_dispatched


# ----------------------------------------------------------------------
# Cross-tenant group commit
# ----------------------------------------------------------------------


class TestGroupCommit:
    def test_deferred_intents_pool_until_the_batch_fills(self):
        server, lld = make_server(group_commit=3)
        a = server.open_session("a")
        b = server.open_session("b")
        populate(a, 1)
        flushes_before = lld.stats.flushes
        assert a.request_flush() is False
        assert b.request_flush() is False
        assert server.pending_intents == 2
        assert lld.stats.flushes == flushes_before
        assert a.request_flush() is True  # third intent commits the group
        assert server.pending_intents == 0
        assert lld.stats.flushes == flushes_before + 1
        assert server.stats.group_commits == 1
        assert server.stats.intents_committed == 3
        assert server.stats.flushes_deferred == 2

    def test_forced_flush_commits_pending_intents(self):
        server, lld = make_server(group_commit=8)
        a = server.open_session("a")
        b = server.open_session("b")
        populate(a, 1)
        assert a.request_flush() is False
        flushes_before = lld.stats.flushes
        b.flush()  # the LD-contract flush is a forced durability point
        assert server.pending_intents == 0
        assert lld.stats.flushes == flushes_before + 1
        assert server.stats.forced_flushes == 1
        assert server.stats.intents_committed == 2

    def test_commit_makes_deferred_tenants_data_durable(self):
        server, lld = make_server(group_commit=4)
        a = server.open_session("a")
        b = server.open_session("b")
        _lid, bids = populate(a, 2)
        assert a.request_flush() is False  # a's data: not yet durable
        populate(b, 1, tag="bee")
        b.flush()  # commits a's intent along with b's
        fresh = reopen_after_crash(lld)
        assert fresh.read(bids[0]).startswith(b"blk-0000")
        assert fresh.read(bids[1]).startswith(b"blk-0001")

    def test_close_commits_leftover_intents(self):
        server, lld = make_server(group_commit=4)
        a = server.open_session("a")
        _lid, bids = populate(a, 1)
        assert a.request_flush() is False
        server.close()
        assert server.pending_intents == 0
        fresh = reopen_after_crash(lld)
        assert fresh.read(bids[0]).startswith(b"blk")

    def test_epoch_bumps_per_physical_flush(self):
        server, _lld = make_server(group_commit=2)
        a = server.open_session("a")
        epoch = server.epoch
        a.request_flush()
        assert server.epoch == epoch  # deferred: no physical flush
        a.request_flush()
        assert server.epoch == epoch + 1


# ----------------------------------------------------------------------
# ARUs across tenants
# ----------------------------------------------------------------------


class TestTenantARUs:
    def test_concurrent_tenant_arus_commit_independently(self):
        server, lld = make_server()
        a = server.open_session("a")
        b = server.open_session("b")
        _lid_a, bids_a = populate(a, 2)
        _lid_b, bids_b = populate(b, 2, tag="bee")
        # Interleave two open ARUs through the nonblocking API.
        a.begin_aru()
        b.begin_aru()
        ops = [
            a.submit_write(bids_a[0], b"A" * 512),
            b.submit_write(bids_b[0], b"B" * 512),
            a.submit_write(bids_a[1], b"A" * 512),
            b.submit_write(bids_b[1], b"B" * 512),
        ]
        server.drain()
        assert all(op.done and op.error is None for op in ops)
        a.end_aru()
        b.end_aru()
        a.flush()
        fresh = reopen_after_crash(lld)
        assert fresh.read(bids_a[0]) == b"A" * 512
        assert fresh.read(bids_b[1]) == b"B" * 512

    def test_one_tenants_open_aru_does_not_tag_anothers_writes(self):
        server, lld = make_server()
        a = server.open_session("a")
        b = server.open_session("b")
        _lid_a, bids_a = populate(a, 1)
        _lid_b, bids_b = populate(b, 1, tag="bee")
        a.flush()
        a.begin_aru()
        a.write(bids_a[0], b"staged" * 85)
        b.write(bids_b[0], b"plain" * 102)  # not part of a's ARU
        b.flush()  # durable, though a's ARU is still open
        # Crash before a ever commits: b's write survives, a's vanishes.
        fresh = reopen_after_crash(lld)
        assert fresh.read(bids_b[0]) == b"plain" * 102
        assert fresh.read(bids_a[0]).startswith(b"blk-0000")

    def test_abort_aru_discards_staged_writes(self):
        server, lld = make_server()
        a = server.open_session("a")
        _lid, bids = populate(a, 1)
        a.flush()
        a.begin_aru()
        a.write(bids[0], b"doomed" * 85)
        a.abort_aru()
        a.flush()
        fresh = reopen_after_crash(lld)
        assert fresh.read(bids[0]).startswith(b"blk-0000")
        # The session's ARU slot is clear: plain writes commit again.
        a2 = LDServer(fresh).open_session("a")
        a2.write(bids[0], b"alive!" * 85)
        a2.flush()
        assert reopen_after_crash(fresh).read(bids[0]) == b"alive!" * 85

    def test_session_aru_context_manager(self):
        server, lld = make_server()
        a = server.open_session("a")
        _lid, bids = populate(a, 1)
        a.flush()
        with a.aru():
            a.write(bids[0], b"commit" * 85)
        a.flush()
        assert reopen_after_crash(lld).read(bids[0]) == b"commit" * 85

    def test_session_aru_context_manager_aborts_on_exception(self):
        server, lld = make_server()
        a = server.open_session("a")
        _lid, bids = populate(a, 1)
        a.flush()
        with pytest.raises(RuntimeError, match="client died"):
            with a.aru():
                a.write(bids[0], b"doomed" * 85)
                raise RuntimeError("client died")
        a.flush()
        assert reopen_after_crash(lld).read(bids[0]).startswith(b"blk")

    def test_aru_errors_clear_the_session_slot(self):
        server, _lld = make_server()
        a = server.open_session("a")
        with pytest.raises(ARUError):
            a.end_aru()  # nothing open
        aru = a.begin_aru()
        assert aru > 0
        a.end_aru()
        with pytest.raises(ARUError):
            a.abort_aru()


# ----------------------------------------------------------------------
# Per-tenant attribution (sched stats + LLDStats counters)
# ----------------------------------------------------------------------


class TestAttribution:
    def test_lld_counters_split_by_tenant(self):
        server, lld = make_server()
        a = server.open_session("a")
        b = server.open_session("b")
        _lid_a, bids_a = populate(a, 3, size=4096)
        _lid_b, bids_b = populate(b, 1, size=4096)
        a.read(bids_a[0])
        tenants = lld.stats.tenants
        assert tenants["a"].blocks_written == 3
        assert tenants["b"].blocks_written == 1
        assert tenants["a"].bytes_written == 3 * 4096
        assert tenants["a"].blocks_read == 1
        assert tenants["b"].blocks_read == 0
        payload = lld.stats.as_dict()
        assert payload["tenants"]["a"]["blocks_written"] == 3

    def test_sched_stats_split_by_tenant(self):
        server, _lld = make_server(group_commit=2)
        a = server.open_session("a")
        b = server.open_session("b")
        populate(a, 2)
        populate(b, 1)
        a.request_flush()
        b.request_flush()
        payload = server.stats.as_dict()
        assert payload["tenants"]["a"]["writes"] == 2
        assert payload["tenants"]["b"]["writes"] == 1
        assert payload["tenants"]["a"]["acks"] == 1
        assert payload["tenants"]["b"]["acks"] == 1
        assert payload["group_commits"] == 1
        assert payload["ops_submitted"] == payload["ops_dispatched"]

    def test_snapshot_is_a_deep_copy(self):
        server, _lld = make_server()
        a = server.open_session("a")
        populate(a, 1)
        snap = server.stats.snapshot()
        populate(a, 1)
        assert snap.tenants["a"].writes == 1
        assert server.stats.tenants["a"].writes == 2
