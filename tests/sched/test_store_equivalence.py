"""LDStore group commit now routes through the scheduler.

``LDStore(flush_batch=N)`` used to count syncs in the store; it now
wraps a bare LD in a solo :class:`~repro.sched.LDServer` and maps each
sync onto a deferrable flush intent. These tests pin the equivalence:
the scheduler-routed path produces byte-identical LLD/disk figures to
the deprecated in-store counting at every batch size, on the exact
workload group commit exists for (many small fsyncs).
"""

import pytest

from repro.disk import SimulatedDisk, fast_test_disk
from repro.fs.minix import LDStore, MinixFS
from repro.lld import LLD
from repro.sched import LDServer, QoSElevatorScheduler, TenantSession
from repro.sim import VirtualClock

from tests.lld.conftest import small_config


def fresh_lld(capacity_mb: int = 8) -> LLD:
    disk = SimulatedDisk(fast_test_disk(capacity_mb=capacity_mb), VirtualClock())
    lld = LLD(disk, small_config(checkpoint_slots=2))
    lld.initialize()
    return lld


def build_fs(backend, flush_batch: int = 1, **store_kw) -> MinixFS:
    store = LDStore(
        backend, cache_bytes=256 * 1024, flush_batch=flush_batch, **store_kw
    )
    fs = MinixFS(store, readahead=False)
    fs.mkfs(ninodes=256)
    return fs


def fsync_workload(fs, n_files: int = 12) -> None:
    for i in range(n_files):
        fd = fs.open(f"/f{i}", create=True)
        fs.write(fd, f"file-{i}:".encode() * 300)
        fs.close(fd)
        fs.sync()
    fs.store.barrier()


def lld_figures(lld):
    payload = lld.stats.as_dict()
    payload.pop("tenants")  # attribution is additive, not behaviour
    return payload, lld.disk.stats.as_dict()


def arm_legacy(flush_batch):
    lld = fresh_lld()
    if flush_batch > 1:
        with pytest.warns(DeprecationWarning):
            fs = build_fs(lld, flush_batch, legacy_group_commit=True)
    else:
        fs = build_fs(lld, flush_batch)
    fsync_workload(fs)
    return fs, lld


def arm_autowrap(flush_batch):
    """The default path: the store wraps the LD in a solo LDServer."""
    lld = fresh_lld()
    fs = build_fs(lld, flush_batch)
    fsync_workload(fs)
    return fs, lld


def arm_explicit_server(flush_batch):
    """A store riding a session of an explicitly built server."""
    lld = fresh_lld()
    server = LDServer(
        lld, QoSElevatorScheduler(), group_commit=flush_batch
    )
    fs = build_fs(server.open_session("fs"), flush_batch=1)
    fsync_workload(fs)
    return fs, lld


@pytest.mark.parametrize("flush_batch", [1, 4, 16])
def test_scheduler_group_commit_matches_legacy_figures(flush_batch):
    fs_old, lld_old = arm_legacy(flush_batch)
    fs_new, lld_new = arm_autowrap(flush_batch)
    fs_srv, lld_srv = arm_explicit_server(flush_batch)
    assert lld_figures(lld_new) == lld_figures(lld_old)
    assert lld_figures(lld_srv) == lld_figures(lld_old)
    # The store-visible sync accounting agrees too.
    for fs in (fs_new, fs_srv):
        assert fs.store.stats.syncs == fs_old.store.stats.syncs
        assert fs.store.stats.syncs_deferred == fs_old.store.stats.syncs_deferred


def test_autowrap_exposes_its_session_and_server():
    lld = fresh_lld()
    fs = build_fs(lld, flush_batch=4)
    session = fs.store.session
    assert isinstance(session, TenantSession)
    assert session.server.group_commit == 4
    assert session.server.ld is lld


def test_flush_batch_on_a_session_backed_store_is_rejected():
    lld = fresh_lld()
    server = LDServer(lld, group_commit=4)
    session = server.open_session("fs")
    with pytest.raises(ValueError, match="group_commit"):
        LDStore(session, flush_batch=2)


def test_legacy_path_warns():
    lld = fresh_lld()
    with pytest.warns(DeprecationWarning, match="legacy_group_commit"):
        LDStore(lld, flush_batch=4, legacy_group_commit=True)


def test_deferred_syncs_commit_on_the_batch_boundary():
    lld = fresh_lld()
    fs = build_fs(lld, flush_batch=3)
    server = fs.store.session.server
    flushes_before = lld.stats.flushes
    for i in range(3):
        fd = fs.open(f"/d{i}", create=True)
        fs.write(fd, b"x" * 1024)
        fs.close(fd)
        fs.sync()
    # Exactly one physical flush for three logical syncs.
    assert lld.stats.flushes == flushes_before + 1
    assert server.stats.group_commits == 1
    assert server.stats.intents_committed == 3
    assert fs.store.stats.syncs_deferred == 2
