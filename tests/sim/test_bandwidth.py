"""Unit tests for the bandwidth/pipeline cost model."""

import pytest

from repro.sim import BandwidthModel, VirtualClock


def test_duration_is_bytes_over_bandwidth():
    model = BandwidthModel(VirtualClock(), 1000.0)
    assert model.duration(500) == pytest.approx(0.5)


def test_charge_advances_clock():
    clock = VirtualClock()
    model = BandwidthModel(clock, 1000.0)
    model.charge(2000)
    assert clock.now == pytest.approx(2.0)


def test_negative_bytes_rejected():
    model = BandwidthModel(VirtualClock(), 1000.0)
    with pytest.raises(ValueError):
        model.duration(-1)


def test_nonpositive_bandwidth_rejected():
    with pytest.raises(ValueError):
        BandwidthModel(VirtualClock(), 0.0)


def test_pipelined_charge_does_not_block_when_stage_free():
    clock = VirtualClock()
    model = BandwidthModel(clock, 1000.0)
    waited = model.charge_pipelined(1000)
    # Stage was free: work is queued, caller does not wait.
    assert waited == 0.0
    assert clock.now == 0.0
    assert model.stage_backlog() == pytest.approx(1.0)


def test_pipelined_charge_blocks_when_stage_busy():
    clock = VirtualClock()
    model = BandwidthModel(clock, 1000.0)
    model.charge_pipelined(1000)  # stage busy until t=1.0
    waited = model.charge_pipelined(1000)  # must wait for the first item
    assert waited == pytest.approx(1.0)
    assert clock.now == pytest.approx(1.0)


def test_pipeline_drains_with_elapsed_time():
    clock = VirtualClock()
    model = BandwidthModel(clock, 1000.0)
    model.charge_pipelined(1000)
    clock.advance(2.0)  # other work overlaps the stage completely
    waited = model.charge_pipelined(1000)
    assert waited == 0.0


def test_wait_for_stage():
    clock = VirtualClock()
    model = BandwidthModel(clock, 1000.0)
    model.charge_pipelined(3000)
    backlog = model.wait_for_stage()
    assert backlog == pytest.approx(3.0)
    assert clock.now == pytest.approx(3.0)
    assert model.stage_backlog() == 0.0
