"""Unit tests for the virtual clock."""

import pytest

from repro.sim import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_moves_forward():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_advance_returns_new_time():
    clock = VirtualClock()
    assert clock.advance(3.0) == pytest.approx(3.0)


def test_advance_negative_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_zero_allowed():
    clock = VirtualClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_advance_to_future():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_past_is_noop():
    clock = VirtualClock(10.0)
    clock.advance_to(5.0)
    assert clock.now == 10.0


def test_elapsed_since():
    clock = VirtualClock()
    t0 = clock.now
    clock.advance(2.5)
    assert clock.elapsed_since(t0) == pytest.approx(2.5)


def test_repr_contains_time():
    assert "1.5" in repr(VirtualClock(1.5))
