"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; a refactor that breaks
one should fail the suite, not a user.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "microbenchmarks.py":
        args.append("0.02")  # keep the smoke test quick
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_example_inventory():
    names = {p.name for p in EXAMPLES}
    # The deliverable promises at least these scenarios.
    assert {"quickstart.py", "multi_fs.py", "crash_recovery.py"} <= names
    assert len(EXAMPLES) >= 3
