"""Tests for the update-in-place LD implementation."""

import pytest

from repro.disk import SimulatedDisk, fast_test_disk
from repro.ld import LIST_HEAD
from repro.ld.errors import (
    ARUError,
    LDError,
    NoSuchBlockError,
    NoSuchListError,
    OutOfSpaceError,
)
from repro.sim import VirtualClock
from repro.uld import ULD, ULDConfig


def make_uld(capacity_mb: int = 4) -> ULD:
    disk = SimulatedDisk(fast_test_disk(capacity_mb=capacity_mb), VirtualClock())
    uld = ULD(disk)
    uld.initialize()
    return uld


def reopen(uld: ULD, after_crash: bool = True) -> ULD:
    if after_crash:
        uld.crash()
    else:
        uld.shutdown()
    fresh = ULD(uld.disk, uld.config)
    fresh.initialize()
    return fresh


def test_basic_roundtrip():
    uld = make_uld()
    lid = uld.new_list()
    bid = uld.new_block(lid, LIST_HEAD)
    uld.write(bid, b"in place")
    assert uld.read(bid) == b"in place"


def test_unwritten_block_reads_empty():
    uld = make_uld()
    lid = uld.new_list()
    bid = uld.new_block(lid, LIST_HEAD)
    assert uld.read(bid) == b""


def test_overwrite_stays_in_same_slot():
    """Update-in-place: the physical home never moves."""
    uld = make_uld()
    lid = uld.new_list()
    bid = uld.new_block(lid, LIST_HEAD)
    uld.write(bid, b"v1")
    slot = uld._blocks[bid].slot
    uld.write(bid, b"v2")
    assert uld._blocks[bid].slot == slot
    assert uld.read(bid) == b"v2"


def test_list_order_allocation_clusters_slots():
    uld = make_uld()
    lid = uld.new_list()
    prev = LIST_HEAD
    slots = []
    for _ in range(10):
        bid = uld.new_block(lid, prev)
        uld.write(bid, b"\x01" * 4096)
        slots.append(uld._blocks[bid].slot)
        prev = bid
    assert slots == sorted(slots)
    assert slots[-1] - slots[0] == 9  # perfectly contiguous


def test_list_operations():
    uld = make_uld()
    lid = uld.new_list()
    a = uld.new_block(lid, LIST_HEAD)
    b = uld.new_block(lid, a)
    c = uld.new_block(lid, a)
    assert uld.list_blocks(lid) == [a, c, b]
    uld.delete_block(c, lid, pred_bid_hint=a)
    assert uld.list_blocks(lid) == [a, b]


def test_delete_list_frees_slots():
    uld = make_uld()
    lid = uld.new_list()
    a = uld.new_block(lid, LIST_HEAD)
    uld.write(a, b"x" * 4096)
    free_before = len(uld._free_slots)
    uld.delete_list(lid)
    assert len(uld._free_slots) == free_before + 1
    with pytest.raises(NoSuchListError):
        uld.list_blocks(lid)


def test_flush_persists_metadata_across_crash():
    uld = make_uld()
    lid = uld.new_list()
    bid = uld.new_block(lid, LIST_HEAD)
    uld.write(bid, b"durable data")
    uld.flush()
    fresh = reopen(uld)
    assert fresh.read(bid) == b"durable data"
    assert fresh.list_blocks(lid) == [bid]


def test_unflushed_metadata_lost_on_crash():
    uld = make_uld()
    lid = uld.new_list()
    uld.flush()
    bid = uld.new_block(lid, LIST_HEAD)
    fresh = reopen(uld)
    assert fresh.list_blocks(lid) == []


def test_shadow_paging_survives_torn_flush():
    """Corrupting the newest metadata copy falls back to the older one."""
    uld = make_uld()
    lid = uld.new_list()
    bid = uld.new_block(lid, LIST_HEAD)
    uld.write(bid, b"old state")
    uld.flush()  # seq 1 -> copy B
    uld.write(bid, b"new state")
    uld.flush()  # seq 2 -> copy A
    newest = uld._meta_lbas[uld._meta_seq % 2]
    uld.disk.corrupt(newest, 1)
    fresh = reopen(uld)
    # Fallback to the older metadata: the block still exists.
    assert fresh.list_blocks(lid) == [bid]


def test_aru_buffers_writes_until_commit():
    uld = make_uld()
    lid = uld.new_list()
    bid = uld.new_block(lid, LIST_HEAD)
    uld.write(bid, b"before")
    uld.begin_aru()
    uld.write(bid, b"inside aru")
    assert uld.read(bid) == b"inside aru"  # visible to the writer
    slot = uld._blocks[bid].slot
    raw = uld.disk.peek(uld._slot_lba(slot), 1)
    assert raw.startswith(b"before")  # but not yet on disk
    uld.end_aru()
    raw = uld.disk.peek(uld._slot_lba(slot), 1)
    assert raw.startswith(b"inside aru")


def test_nested_aru_rejected():
    uld = make_uld()
    uld.begin_aru()
    with pytest.raises(ARUError):
        uld.begin_aru()


def test_flush_inside_aru_deferred():
    uld = make_uld()
    lid = uld.new_list()
    uld.flush()
    uld.begin_aru()
    bid = uld.new_block(lid, LIST_HEAD)
    uld.flush()  # must not create a durability point mid-ARU
    fresh = reopen(uld)
    assert fresh.list_blocks(lid) == []


def test_out_of_space():
    uld = make_uld(capacity_mb=2)
    lid = uld.new_list()
    with pytest.raises(OutOfSpaceError):
        prev = LIST_HEAD
        for _ in range(10000):
            bid = uld.new_block(lid, prev)
            uld.write(bid, b"\x01" * 4096)
            prev = bid


def test_reservations():
    uld = make_uld()
    lid = uld.new_list()
    reservation = uld.reserve_blocks(2)
    uld.new_block(lid, LIST_HEAD, reservation=reservation)
    assert reservation.blocks == 1
    uld.cancel_reservation(reservation)


def test_move_sublist():
    uld = make_uld()
    src = uld.new_list()
    dst = uld.new_list()
    a = uld.new_block(src, LIST_HEAD)
    b = uld.new_block(src, a)
    uld.move_sublist(a, b, src, dst, LIST_HEAD)
    assert uld.list_blocks(src) == []
    assert uld.list_blocks(dst) == [a, b]


def test_requires_initialize():
    disk = SimulatedDisk(fast_test_disk(capacity_mb=2), VirtualClock())
    uld = ULD(disk)
    with pytest.raises(LDError):
        uld.read(1)
