"""Degraded-mode behaviour: member failure, survivors, recovery.

The contract under test: a mirrored volume keeps serving — and loses no
acknowledged data — when all but one member drops; a striped volume has
no redundancy and must fail loudly on any access touching a dead member.
"""

import os

import pytest

from repro.crashsim import (
    MirrorRecording,
    OracleDriver,
    degraded_mirror_volume,
    explore_degraded_mirror,
    run_matrix_workload,
)
from repro.disk import SimulatedDisk, fast_test_disk
from repro.lld import LLD, LLDConfig
from repro.sim.clock import VirtualClock
from repro.volume import Volume, VolumeDegradedError

CONFIG = dict(
    segment_size=64 * 1024,
    summary_capacity=4096,
    block_size=4096,
    checkpoint_slots=1,
    min_free_segments=2,
    torn_write_protection=True,
)


def make_mirror(n=2, mb=8):
    members = [
        SimulatedDisk(fast_test_disk(capacity_mb=mb), VirtualClock())
        for _ in range(n)
    ]
    return Volume(members, VirtualClock(), layout="mirror")


def make_stripe(n=2, mb=8, chunk=8):
    members = [
        SimulatedDisk(fast_test_disk(capacity_mb=mb), VirtualClock())
        for _ in range(n)
    ]
    return Volume(members, VirtualClock(), chunk_sectors=chunk)


# ----------------------------------------------------------------------
# Basic degraded semantics
# ----------------------------------------------------------------------


def test_mirror_serves_reads_and_writes_with_member_down():
    volume = make_mirror(2)
    before = os.urandom(512 * 8)
    volume.write(0, before)
    volume.barrier()

    volume.fail_member(0)
    assert volume.degraded
    assert volume.read(0, 8) == before
    assert volume.volume_stats.degraded_reads >= 1

    after = os.urandom(512 * 8)
    volume.write(64, after)
    volume.barrier()
    assert volume.read(64, 8) == after
    # Only the survivor took the write.
    assert volume.disks[1].peek(64, 8) == after
    assert volume.disks[0].peek(64, 8) != after


def test_mirror_cannot_lose_last_member():
    volume = make_mirror(2)
    volume.fail_member(0)
    with pytest.raises(VolumeDegradedError):
        volume.fail_member(1)
    # The refused drop must not have marked the survivor dead.
    assert volume.alive[1]
    data = os.urandom(512 * 4)
    volume.write(0, data)
    volume.barrier()
    assert volume.read(0, 4) == data


def test_stripe_fails_loudly_on_dead_member():
    volume = make_stripe(2, chunk=8)
    volume.write(0, os.urandom(512 * 16))
    volume.barrier()
    volume.fail_member(1)
    # Chunk 0 (member 0) still serves; chunk 1 (member 1) raises.
    volume.read(0, 8)
    with pytest.raises(VolumeDegradedError):
        volume.read(8, 8)
    with pytest.raises(VolumeDegradedError):
        volume.write(8, os.urandom(512 * 8))


def test_mid_run_member_failure_preserves_acked_data():
    """Fail a member between write generations; every ack must survive."""
    volume = make_mirror(2)
    acked = {}
    for generation in range(6):
        if generation == 3:
            volume.fail_member(generation % 2)
        lba = generation * 64
        data = os.urandom(512 * 16)
        volume.write(lba, data)
        volume.barrier()  # the acknowledgement point
        acked[lba] = data
    for lba, data in acked.items():
        assert volume.read(lba, 16) == data


# ----------------------------------------------------------------------
# LLD over a degraded mirror
# ----------------------------------------------------------------------


def test_lld_mounts_and_recovers_from_single_survivor():
    """Acked LLD writes survive mounting from either member alone."""
    volume = make_mirror(2)
    recording = MirrorRecording(volume)
    config = LLDConfig(**CONFIG)
    lld = LLD(volume, config)
    lld.initialize()
    driver = OracleDriver(lld, recording)
    handles = run_matrix_workload(
        driver, n_small=8, n_overwrites=2, generations=2, n_fill=8
    )
    recording.assert_isomorphic()
    final = driver.oracle.points[-1]

    for survivor in (0, 1):
        # Clone the survivor's full current image onto a fresh disk, then
        # mount it as a degraded mirror: the "other disk is gone" mount.
        member = recording.members[survivor]
        image = SimulatedDisk(member.geometry, VirtualClock())
        for lba, data in member.inner._sectors.items():
            image.install(lba, data)
        degraded = degraded_mirror_volume(image, 2, survivor)
        lld2 = LLD(degraded, config)
        lld2.initialize()
        for bid, expected in final.blocks.items():
            assert lld2.read(bid) == expected, (survivor, bid)
        for lid, chain in final.lists.items():
            assert tuple(lld2.list_blocks(lid)) == chain
        assert handles["lid"] in final.lists


def test_explore_degraded_mirror_zero_violations_small():
    """Crash-state sweep of one member, recovered degraded: no violations."""
    volume = make_mirror(2)
    recording = MirrorRecording(volume)
    config = LLDConfig(**CONFIG)
    lld = LLD(volume, config)
    lld.initialize()
    driver = OracleDriver(lld, recording)
    run_matrix_workload(driver, n_small=4, n_overwrites=2, generations=2, n_fill=4)
    report = explore_degraded_mirror(
        recording,
        config,
        driver.oracle,
        survivor=1,
        reorder_samples_per_epoch=6,
    )
    assert report.states_total > 50
    assert report.violations == []


def test_mirror_recording_rejects_stripes_and_degraded():
    stripe = make_stripe(2)
    with pytest.raises(ValueError, match="mirror"):
        MirrorRecording(stripe)
    mirror = make_mirror(2)
    mirror.fail_member(0)
    with pytest.raises(ValueError, match="degraded"):
        MirrorRecording(mirror)
