"""Property tests for the RAID-0 address map and the 1-disk identity.

The stripe map is the correctness keystone of the volume layer: every
volume LBA must land on exactly one member sector, invertibly, and a
split request must cover exactly the requested range with no overlap —
under any chunk size, disk count, and boundary-straddling run.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import SimulatedDisk, fast_test_disk
from repro.sim.clock import VirtualClock
from repro.volume import StripeMap, Volume

MEMBER_SECTORS = 4096


@st.composite
def stripe_maps(draw):
    n_disks = draw(st.integers(min_value=1, max_value=8))
    chunk = draw(st.sampled_from([1, 2, 3, 7, 8, 16, 60, 128, 333]))
    member = draw(st.integers(min_value=chunk, max_value=MEMBER_SECTORS))
    return StripeMap(n_disks, chunk, member)


@given(stripe_maps(), st.data())
def test_round_trip_logical_physical_logical(m, data):
    lba = data.draw(st.integers(min_value=0, max_value=m.total_sectors - 1))
    disk, plba = m.to_physical(lba)
    assert 0 <= disk < m.n_disks
    assert 0 <= plba < m.usable_per_disk
    assert m.to_logical(disk, plba) == lba


@given(stripe_maps(), st.data())
def test_round_trip_physical_logical_physical(m, data):
    disk = data.draw(st.integers(min_value=0, max_value=m.n_disks - 1))
    plba = data.draw(st.integers(min_value=0, max_value=m.usable_per_disk - 1))
    lba = data.draw(st.just(m.to_logical(disk, plba)))
    assert 0 <= lba < m.total_sectors
    assert m.to_physical(lba) == (disk, plba)


@given(stripe_maps(), st.data())
@settings(max_examples=200)
def test_split_covers_exactly_once(m, data):
    """A split covers every requested sector exactly once, nothing else."""
    lba = data.draw(st.integers(min_value=0, max_value=m.total_sectors - 1))
    nsectors = data.draw(st.integers(min_value=1, max_value=m.total_sectors - lba))
    subs = m.split(lba, nsectors)

    covered: set[int] = set()
    for sub in subs:
        assert sub.nsectors == sum(count for _s, _l, count in sub.pieces)
        assert 0 <= sub.plba and sub.plba + sub.nsectors <= m.usable_per_disk
        sub_covered: set[int] = set()
        for sub_off, logical_off, count in sub.pieces:
            for i in range(count):
                # The piece's physical sector must be the map of its
                # logical sector.
                logical = lba + logical_off + i
                assert m.to_physical(logical) == (sub.disk, sub.plba + sub_off + i)
                assert logical not in covered
                covered.add(logical)
                sub_covered.add(sub_off + i)
        # The sub-request's buffer is fully accounted for (contiguous).
        assert sub_covered == set(range(sub.nsectors))
    assert covered == set(range(lba, lba + nsectors))


@given(stripe_maps(), st.data())
@settings(max_examples=100)
def test_split_merges_to_one_subrequest_per_disk(m, data):
    """Sequential runs produce at most one contiguous request per member."""
    lba = data.draw(st.integers(min_value=0, max_value=m.total_sectors - 1))
    nsectors = data.draw(st.integers(min_value=1, max_value=m.total_sectors - lba))
    subs = m.split(lba, nsectors)
    assert len(subs) <= m.n_disks
    assert [s.disk for s in subs] == sorted({s.disk for s in subs})


def test_partial_trailing_chunk_is_unaddressable():
    # 1000 sectors, chunks of 128: only 7 whole chunks per member map.
    m = StripeMap(2, 128, 1000)
    assert m.usable_per_disk == 896
    assert m.total_sectors == 2 * 896
    # Every valid LBA maps inside the member; one past the end raises.
    disk, plba = m.to_physical(m.total_sectors - 1)
    assert plba < 896
    with pytest.raises(ValueError):
        m.to_physical(m.total_sectors)


@given(
    st.integers(min_value=1, max_value=4),
    st.sampled_from([1, 4, 32, 128]),
)
@settings(max_examples=20, deadline=None)
def test_whole_image_byte_identity_through_volume(n_disks, chunk):
    """The full volume image round-trips through write + read byte-exactly."""
    members = [
        SimulatedDisk(fast_test_disk(capacity_mb=1), VirtualClock())
        for _ in range(n_disks)
    ]
    volume = Volume(members, VirtualClock(), chunk_sectors=chunk, layout="stripe")
    total = volume.geometry.total_sectors
    image = os.urandom(total * 512)
    volume.write(0, image)
    volume.barrier()
    assert volume.read(0, total) == image
    assert volume.peek(0, total) == image


def test_one_disk_volume_matches_bare_disk_bytes():
    """A whole-disk image through a 1-disk volume == the bare SimulatedDisk.

    Identity of layout, not just contents: each member sector holds the
    same bytes the bare disk holds at the same LBA.
    """
    geometry = fast_test_disk(capacity_mb=1)
    bare = SimulatedDisk(geometry, VirtualClock())
    member = SimulatedDisk(fast_test_disk(capacity_mb=1), VirtualClock())
    volume = Volume([member], VirtualClock(), chunk_sectors=128, layout="stripe")
    assert volume.geometry.total_sectors == geometry.total_sectors

    rng_image = os.urandom(geometry.total_sectors * 512)
    bare.write(0, rng_image)
    volume.write(0, rng_image)
    volume.barrier()
    bare.barrier()
    assert volume.read(0, geometry.total_sectors) == bare.read(
        0, geometry.total_sectors
    )
    # Sector-store identity: the volume added no translation at N=1.
    assert member._sectors == bare._sectors
