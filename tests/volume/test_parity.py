"""RAID-4/5 degraded-state battery: write paths, failure, rebuild, resync.

The property tests pin the address map and the XOR invariant; this file
pins the *stateful* machinery around them: write-path classification
(full-stripe vs read-modify-write), serving through a single failure,
refusing a second, the online rebuild scanner (including under foreground
traffic, and aborting when the replacement dies), the md-style parity
resync that closes the crash window, and the LLD stack mounted over a
degraded array.
"""

import os
import random

import pytest

from repro.bench.builders import BuildSpec, build_minix_lld, fresh_volume
from repro.disk import SimulatedDisk, fast_test_disk
from repro.lld import LLD
from repro.sim import VirtualClock
from repro.volume import Volume, VolumeDegradedError, VolumeError

CHUNK = 8


def make_parity(n: int = 4, mb: int = 2, layout: str = "raid5") -> Volume:
    members = [
        SimulatedDisk(fast_test_disk(capacity_mb=mb), VirtualClock())
        for _ in range(n)
    ]
    return Volume(members, VirtualClock(), layout=layout, chunk_sectors=CHUNK)


def row_width(volume: Volume) -> int:
    pmap = volume.parity_map
    return pmap.data_per_row * pmap.chunk_sectors


def assert_member_images_identical(volume: Volume, control: Volume) -> None:
    """Member-by-member platter images agree (the rebuild scanner also
    materializes never-written rows as zeros, so compare full images, not
    sparse sector stores)."""
    for mine, theirs in zip(volume.disks, control.disks):
        sectors = mine.geometry.total_sectors
        assert mine.peek(0, sectors) == theirs.peek(0, sectors)


def test_write_path_classification():
    """Row-aligned full-width writes take the no-preread full-stripe path;
    anything smaller pays the read-modify-write penalty."""
    volume = make_parity()
    width = row_width(volume)

    volume.write(0, os.urandom(width * 512))
    stats = volume.volume_stats
    assert stats.full_stripe_writes == 1
    assert stats.rmw_writes == 0

    volume.write(0, os.urandom(512))  # one sector: RMW
    assert stats.full_stripe_writes == 1
    assert stats.rmw_writes == 1

    # A straddling write is full-stripe for the whole rows it covers and
    # RMW for the partial edges.
    volume.write(width // 2, os.urandom(2 * width * 512))
    assert stats.full_stripe_writes == 2
    assert stats.rmw_writes == 3


def test_degraded_serving_reads_writes_peek():
    """One failure is invisible to clients: reads reconstruct, writes keep
    parity maintained, peek agrees — for every choice of failed member."""
    for lost in range(4):
        volume = make_parity()
        total = volume.geometry.total_sectors
        model = bytearray(total * 512)
        rng = random.Random(lost)

        def scribble(count):
            for _ in range(count):
                lba = rng.randrange(total)
                n = rng.randint(1, min(total - lba, 3 * row_width(volume)))
                payload = os.urandom(n * 512)
                volume.write(lba, payload)
                model[lba * 512 : (lba + n) * 512] = payload

        scribble(20)
        volume.fail_member(lost)
        assert volume.degraded
        scribble(20)  # degraded writes must still maintain parity
        volume.barrier()
        assert volume.read(0, total) == bytes(model)
        assert volume.peek(0, total) == bytes(model)
        stats = volume.volume_stats
        assert stats.reconstructed_reads > 0
        assert stats.degraded_writes > 0


def test_second_failure_refused_without_damage():
    volume = make_parity()
    total = volume.geometry.total_sectors
    image = os.urandom(total * 512)
    volume.write(0, image)
    volume.fail_member(1)
    with pytest.raises(VolumeDegradedError):
        volume.fail_member(3)
    # The refusal mutated nothing: still exactly one member down, data intact.
    assert volume.alive == [True, False, True, True]
    volume.barrier()
    assert volume.read(0, total) == image


def test_replace_member_validation():
    volume = make_parity()
    with pytest.raises(VolumeError):
        volume.replace_member(0)  # live member: nothing to rebuild
    volume.fail_member(0)
    with pytest.raises(ValueError):
        volume.replace_member(
            0, SimulatedDisk(fast_test_disk(capacity_mb=4), VirtualClock())
        )  # geometry mismatch
    with pytest.raises(ValueError):
        volume.replace_member(
            0, SimulatedDisk(fast_test_disk(capacity_mb=2), volume.clock)
        )  # must carry a private clock
    volume.replace_member(0)
    with pytest.raises(VolumeError):
        volume.replace_member(0)  # already rebuilding

    stripe = Volume(
        [
            SimulatedDisk(fast_test_disk(capacity_mb=2), VirtualClock())
            for _ in range(2)
        ],
        VirtualClock(),
        layout="stripe",
        chunk_sectors=CHUNK,
    )
    with pytest.raises(VolumeError):
        stripe.replace_member(0)


def test_rebuild_completes_and_matches_never_failed():
    """After fail + replace + full rebuild the volume is byte-identical —
    member by member — to one that never failed."""
    volume = make_parity()
    control = make_parity()
    total = volume.geometry.total_sectors
    rng = random.Random(7)
    for _ in range(30):
        lba = rng.randrange(total)
        n = rng.randint(1, min(total - lba, 2 * row_width(volume)))
        payload = os.urandom(n * 512)
        volume.write(lba, payload)
        control.write(lba, payload)

    volume.fail_member(2)
    volume.replace_member(2)
    assert volume.rebuild_active
    assert volume.rebuild_progress == 0.0
    assert volume.rebuild_step(1) == 1
    assert 0.0 < volume.rebuild_progress < 1.0
    volume.rebuild_run_to_completion()
    assert not volume.rebuild_active
    assert not volume.degraded
    assert volume.rebuild_progress == 1.0
    assert volume.volume_stats.rebuilds_completed == 1

    volume.barrier()
    control.barrier()
    assert_member_images_identical(volume, control)

    # Full redundancy is real: any *different* member may now fail.
    volume.fail_member(0)
    assert volume.read(0, total) == control.peek(0, total)


def test_fail_rebuilding_member_aborts_to_degraded():
    """The replacement dying mid-scan is not a second failure: the volume
    drops back to plain degraded and a fresh replacement can start over."""
    volume = make_parity()
    total = volume.geometry.total_sectors
    image = os.urandom(total * 512)
    volume.write(0, image)
    volume.fail_member(1)
    volume.replace_member(1)
    volume.rebuild_step(2)
    volume.fail_member(1)  # replacement spindle dies
    assert not volume.rebuild_active
    assert volume.degraded
    volume.barrier()
    assert volume.read(0, total) == image
    volume.replace_member(1)
    volume.rebuild_run_to_completion()
    assert not volume.degraded
    assert volume.read(0, total) == image


def test_rebuild_under_foreground_traffic():
    """ISSUE 9 satellite: a seeded mixed workload runs while the scanner
    rebuilds. Every acked write stays readable throughout, a second
    failure is refused cleanly mid-rebuild, and the rebuilt volume is
    figure-identical to one that never failed."""
    volume = make_parity(mb=2)
    control = make_parity(mb=2)
    total = volume.geometry.total_sectors
    model = bytearray(total * 512)
    rng = random.Random(42)

    def mixed_op():
        if rng.random() < 0.5:
            lba = rng.randrange(total)
            n = rng.randint(1, min(total - lba, 2 * row_width(volume)))
            payload = os.urandom(n * 512)
            volume.write(lba, payload)
            control.write(lba, payload)
            model[lba * 512 : (lba + n) * 512] = payload
        else:
            lba = rng.randrange(total)
            n = rng.randint(1, min(total - lba, row_width(volume)))
            assert volume.read(lba, n) == bytes(model[lba * 512 : (lba + n) * 512])

    for _ in range(40):
        mixed_op()
    volume.fail_member(3)
    volume.replace_member(3)
    volume.rebuild_rate = 1.5  # rows donated per foreground request

    refused_second_failure = False
    while volume.rebuild_active:
        mixed_op()
        if not refused_second_failure and 0.0 < volume.rebuild_progress < 1.0:
            with pytest.raises(VolumeDegradedError):
                volume.fail_member(0)
            refused_second_failure = True

    assert refused_second_failure
    assert not volume.degraded
    assert volume.volume_stats.rebuilds_completed == 1
    volume.barrier()
    control.barrier()
    assert volume.read(0, total) == bytes(model)
    assert_member_images_identical(volume, control)


def test_resync_closes_the_parity_inconsistency_window():
    """``corrupt`` changes data under parity's feet — the same shape as a
    crash landing a data write without its parity write. A failure taken
    on the inconsistent row reconstructs stale bytes; resyncing first
    (md's post-crash step) makes degraded reads agree with what is
    actually on the platters."""
    lba = 3
    original = os.urandom(512)

    def scenario():
        volume = make_parity(n=3)
        volume.write(lba, original)
        volume.write(100, os.urandom(512))
        volume.barrier()
        volume.corrupt(lba)
        return volume, volume.peek(lba, 1)

    # Without resync: parity still encodes the pre-corruption bytes, so
    # losing the data member resurrects them — reconstruction disagrees
    # with what a direct read would have returned.
    volume, on_disk = scenario()
    assert on_disk != original
    data_member = volume.map.to_physical(lba)[0]
    volume.fail_member(data_member)
    assert volume.read(lba, 1) == original  # the write hole

    # With resync first: parity is recomputed from the as-found data and
    # the same failure reconstructs the true on-disk bytes.
    volume, on_disk = scenario()
    assert volume.resync_parity() > 0
    assert volume.resync_parity() == 0  # idempotent: invariant restored
    volume.fail_member(volume.map.to_physical(lba)[0])
    assert volume.read(lba, 1) == on_disk

    # Guard rails: nothing to resync without parity, or degraded.
    stripe = Volume(
        [SimulatedDisk(fast_test_disk(capacity_mb=2), VirtualClock())],
        VirtualClock(),
        layout="stripe",
        chunk_sectors=CHUNK,
    )
    with pytest.raises(VolumeError):
        stripe.resync_parity()
    degraded = make_parity()
    degraded.fail_member(0)
    with pytest.raises(VolumeError):
        degraded.resync_parity()


def test_consistent_volume_resync_is_a_noop():
    volume = make_parity()
    rng = random.Random(3)
    total = volume.geometry.total_sectors
    for _ in range(15):
        lba = rng.randrange(total)
        n = rng.randint(1, min(total - lba, 2 * row_width(volume)))
        volume.write(lba, os.urandom(n * 512))
    volume.barrier()
    assert volume.resync_parity() == 0


def test_lld_over_raid5_degrades_and_recovers():
    """The paper stack end-to-end: MINIX over LLD over a 4-member RAID-5.
    Files survive a member failure, and a fresh LLD recovers from the
    degraded array."""
    spec = BuildSpec.from_scale(0.05)
    fs, lld = build_minix_lld(spec, n_disks=4, volume_layout="raid5")
    volume = lld.disk

    blobs = {}
    for i in range(6):
        name = f"/f{i}"
        blobs[name] = os.urandom(3000 + 1111 * i)
        fd = fs.open(name, create=True)
        fs.write(fd, blobs[name])
        fs.close(fd)
    fs.sync()

    volume.fail_member(1)
    for name, blob in blobs.items():
        fd = fs.open(name)
        assert fs.read(fd, len(blob)) == blob
        fs.close(fd)

    # Cold recovery over the degraded array: a fresh LLD instance mounts
    # from reconstructed reads alone (no checkpoint was saved, so this
    # exercises the full recovery sweep through XOR reconstruction).
    fresh = LLD(volume, lld.config)
    fresh.initialize()
    assert fresh.recovery_report is not None
    assert volume.volume_stats.reconstructed_reads > 0


def test_parity_placement_hints():
    """The LLD's segment allocator sees which member holds each slot's
    parity chunk, and the volume reports it per-LBA."""
    spec = BuildSpec.from_scale(0.05)
    _fs, lld = build_minix_lld(spec, n_disks=4, volume_layout="raid5")
    volume = lld.disk
    layout = lld.layout

    assert layout.slot_parity_spindles is not None
    assert len(layout.slot_parity_spindles) == layout.segment_count
    for seg in range(layout.segment_count):
        lba = layout.slot_lba(seg)
        parity = volume.parity_spindle_of(lba)
        assert layout.slot_parity_spindles[seg] == parity
        # Parity never shares a member with the slot's own data chunk.
        assert parity != volume.spindle_of(lba)
    # RAID-5 rotation shows through: parity is not pinned to one member.
    assert len(set(layout.slot_parity_spindles)) > 1

    # Stripe volumes carry no parity hints.
    _fs2, lld2 = build_minix_lld(spec, n_disks=4, volume_layout="stripe")
    assert lld2.layout.slot_parity_spindles is None
    assert lld2.disk.parity_spindle_of(0) is None


def test_fresh_volume_level_alias():
    spec = BuildSpec.from_scale(0.3)  # big enough to clear the 8 MB member floor
    volume = fresh_volume(spec, 4, level="raid5")
    assert volume.layout == "raid5"
    with pytest.raises(ValueError):
        fresh_volume(spec, 4, layout="raid5", level="raid5")
    # Member sizing: data capacity ~= the single-disk partition, spread
    # over the N-1 data chunks per row (vs N for a stripe).
    raid5_member = volume.geometry._member.total_sectors
    stripe_member = fresh_volume(spec, 4, layout="stripe").geometry._member.total_sectors
    assert raid5_member > stripe_member
