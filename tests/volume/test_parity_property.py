"""Property tests for the RAID-4/5 parity address map and XOR reconstruction.

The parity map is the correctness keystone of degraded operation: every
volume LBA must land on exactly one *data* chunk, invertibly; every
stripe row must dedicate exactly one chunk to parity with no member
holding two chunks of the same row; and — the property the whole design
rests on — XOR over the surviving chunks of a row must reproduce any
single lost member byte-exactly, for arbitrary write histories.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import SimulatedDisk, fast_test_disk
from repro.sim.clock import VirtualClock
from repro.volume import ParityStripeMap, Volume

MEMBER_SECTORS = 4096


@st.composite
def parity_maps(draw):
    n_disks = draw(st.integers(min_value=3, max_value=8))
    chunk = draw(st.sampled_from([1, 2, 3, 7, 8, 16, 60, 128]))
    member = draw(st.integers(min_value=chunk, max_value=MEMBER_SECTORS))
    rotate = draw(st.booleans())
    return ParityStripeMap(n_disks, chunk, member, rotate=rotate)


@given(parity_maps(), st.data())
def test_round_trip_logical_physical_logical(m, data):
    lba = data.draw(st.integers(min_value=0, max_value=m.total_sectors - 1))
    disk, plba = m.to_physical(lba)
    assert 0 <= disk < m.n_disks
    assert 0 <= plba < m.usable_per_disk
    assert m.to_logical(disk, plba) == lba


@given(parity_maps(), st.data())
def test_parity_sectors_have_no_logical_address(m, data):
    """to_logical refuses the parity chunk: parity is not client data."""
    row = data.draw(st.integers(min_value=0, max_value=m.rows - 1))
    within = data.draw(st.integers(min_value=0, max_value=m.chunk_sectors - 1))
    with pytest.raises(ValueError):
        m.to_logical(m.parity_disk(row), row * m.chunk_sectors + within)


@given(parity_maps(), st.data())
def test_each_row_has_exactly_one_parity_chunk(m, data):
    """One parity member per row; data chunks cover the other members."""
    row = data.draw(st.integers(min_value=0, max_value=m.rows - 1))
    parity = m.parity_disk(row)
    data_members = [m.data_disk(row, pos) for pos in range(m.n_disks - 1)]
    assert parity not in data_members
    # No two chunks of a row share a member: parity + data = all members.
    assert sorted(data_members + [parity]) == list(range(m.n_disks))


@given(st.integers(min_value=3, max_value=8))
def test_raid5_rotation_balances_parity(n_disks):
    """Left-symmetric rotation: over N consecutive rows, every member
    holds parity exactly once (RAID-4 pins it to the last member)."""
    rotated = ParityStripeMap(n_disks, 8, 64 * n_disks, rotate=True)
    assert sorted(rotated.parity_disk(r) for r in range(n_disks)) == list(
        range(n_disks)
    )
    fixed = ParityStripeMap(n_disks, 8, 64 * n_disks, rotate=False)
    assert {fixed.parity_disk(r) for r in range(n_disks)} == {n_disks - 1}


@given(parity_maps(), st.data())
@settings(max_examples=150)
def test_split_covers_exactly_once(m, data):
    """A split covers every requested sector exactly once, nothing else,
    and never addresses a parity chunk."""
    lba = data.draw(st.integers(min_value=0, max_value=m.total_sectors - 1))
    nsectors = data.draw(st.integers(min_value=1, max_value=m.total_sectors - lba))
    subs = m.split(lba, nsectors)

    covered: set[int] = set()
    for sub in subs:
        assert sub.nsectors == sum(count for _s, _l, count in sub.pieces)
        assert 0 <= sub.plba and sub.plba + sub.nsectors <= m.usable_per_disk
        for sub_off, logical_off, count in sub.pieces:
            for i in range(count):
                logical = lba + logical_off + i
                assert m.to_physical(logical) == (sub.disk, sub.plba + sub_off + i)
                # Physical sector is a data chunk of its row, never parity.
                row = (sub.plba + sub_off + i) // m.chunk_sectors
                assert sub.disk != m.parity_disk(row)
                assert logical not in covered
                covered.add(logical)
    assert covered == set(range(lba, lba + nsectors))


@given(parity_maps(), st.data())
@settings(max_examples=150)
def test_split_rows_agrees_with_split(m, data):
    """split_rows is the same coverage, grouped by stripe row."""
    lba = data.draw(st.integers(min_value=0, max_value=m.total_sectors - 1))
    nsectors = data.draw(st.integers(min_value=1, max_value=m.total_sectors - lba))

    from_split = {
        (sub.disk, sub.plba + sub_off + i)
        for sub in m.split(lba, nsectors)
        for sub_off, _logical_off, count in sub.pieces
        for i in range(count)
    }
    from_rows = set()
    for row, frags in m.split_rows(lba, nsectors):
        for f in frags:
            assert f.within + f.nsectors <= m.chunk_sectors
            for i in range(f.nsectors):
                plba = m.row_lba(row) + f.within + i
                assert plba // m.chunk_sectors == row
                key = (f.disk, plba)
                assert key not in from_rows
                from_rows.add(key)
                # logical_off indexes the caller's buffer consistently.
                assert m.to_physical(lba + f.logical_off + i) == key
    assert from_rows == from_split


@given(
    st.integers(min_value=3, max_value=5),
    st.sampled_from([1, 4, 32]),
    st.sampled_from(["raid4", "raid5"]),
    st.data(),
)
@settings(max_examples=25, deadline=None)
def test_xor_reconstructs_any_lost_member(n_disks, chunk, layout, data):
    """After an arbitrary write history, losing ANY single member is
    invisible: degraded reads and peeks are byte-identical to the model.

    This is the fundamental parity invariant — XOR over the surviving
    chunks of each row reproduces the lost chunk exactly.
    """
    members = [
        SimulatedDisk(fast_test_disk(capacity_mb=1), VirtualClock())
        for _ in range(n_disks)
    ]
    volume = Volume(members, VirtualClock(), chunk_sectors=chunk, layout=layout)
    total = volume.geometry.total_sectors
    model = bytearray(total * 512)

    for _ in range(data.draw(st.integers(min_value=1, max_value=12))):
        lba = data.draw(st.integers(min_value=0, max_value=total - 1))
        nsectors = data.draw(
            st.integers(min_value=1, max_value=min(total - lba, 4 * chunk * n_disks))
        )
        payload = os.urandom(nsectors * 512)
        volume.write(lba, payload)
        model[lba * 512 : (lba + nsectors) * 512] = payload
    volume.barrier()

    lost = data.draw(st.integers(min_value=0, max_value=n_disks - 1))
    volume.fail_member(lost)
    assert volume.read(0, total) == bytes(model)
    assert volume.peek(0, total) == bytes(model)
