"""Functional tests for the volume layer: striping, mirroring, overlap.

The timing assertions here pin the per-spindle busy-until model — the
tentpole property that requests dispatched to different spindles in one
batch overlap in simulated time — and the N=1 figure-identity that lets
the volume interpose under every existing benchmark without moving a
single figure.
"""

import os

import pytest

from repro.bench.builders import BuildSpec, build_minix_lld, fresh_volume
from repro.bench.report import stack_registry
from repro.disk import SimulatedDisk, fast_test_disk
from repro.obs import Tracer, attach_tracer
from repro.sim.clock import VirtualClock
from repro.volume import Volume, VolumeDegradedError


def make_members(n, mb=16):
    return [
        SimulatedDisk(fast_test_disk(capacity_mb=mb), VirtualClock())
        for _ in range(n)
    ]


def make_stripe(n, mb=16, chunk=128):
    return Volume(make_members(n, mb), VirtualClock(), chunk_sectors=chunk)


def make_mirror(n, mb=16):
    return Volume(make_members(n, mb), VirtualClock(), layout="mirror")


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def test_member_must_not_share_volume_clock():
    shared = VirtualClock()
    member = SimulatedDisk(fast_test_disk(capacity_mb=1), shared)
    with pytest.raises(ValueError, match="private clock"):
        Volume([member], shared)


def test_members_must_share_geometry():
    disks = [
        SimulatedDisk(fast_test_disk(capacity_mb=1), VirtualClock()),
        SimulatedDisk(fast_test_disk(capacity_mb=2), VirtualClock()),
    ]
    with pytest.raises(ValueError, match="geometry"):
        Volume(disks, VirtualClock())


def test_stripe_capacity_sums_members():
    volume = make_stripe(4, mb=1)
    member_total = volume.disks[0].geometry.total_sectors
    usable = (member_total // 128) * 128
    assert volume.geometry.total_sectors == 4 * usable
    assert volume.spindle_count == 4
    assert volume.spindle_of(0) == 0
    assert volume.spindle_of(128) == 1


def test_mirror_capacity_is_one_member():
    volume = make_mirror(3, mb=1)
    assert volume.geometry.total_sectors == volume.disks[0].geometry.total_sectors
    assert volume.spindle_count == 1


# ----------------------------------------------------------------------
# Data integrity
# ----------------------------------------------------------------------


def test_stripe_read_after_write_before_barrier():
    volume = make_stripe(4, chunk=8)
    data = os.urandom(512 * 64)
    volume.write(100, data)
    # Queued write: data must already be visible to reads.
    assert volume.read(100, 64) == data


def test_stripe_chunk_boundary_straddle():
    volume = make_stripe(3, chunk=4)
    data = os.urandom(512 * 11)
    volume.write(2, data)  # straddles three chunks on different members
    volume.barrier()
    assert volume.read(2, 11) == data
    # Single sectors from the middle read back too.
    for i in range(11):
        assert volume.read(2 + i, 1) == data[i * 512 : (i + 1) * 512]


def test_mirror_write_fans_out_to_all_members():
    volume = make_mirror(3)
    data = os.urandom(512 * 4)
    volume.write(40, data)
    volume.barrier()
    for disk in volume.disks:
        assert disk.peek(40, 4) == data
    assert volume.volume_stats.sub_writes == 3


def test_corrupt_hits_relevant_member():
    volume = make_stripe(2, chunk=4)
    data = os.urandom(512 * 8)
    volume.write(0, data)
    volume.barrier()
    volume.corrupt(4, 4)  # second chunk -> member 1
    assert volume.read(0, 4) == data[: 4 * 512]
    assert volume.read(4, 4) != data[4 * 512 :]


# ----------------------------------------------------------------------
# The overlap model
# ----------------------------------------------------------------------


def test_striped_sequential_write_costs_max_not_sum():
    """A striped batch + barrier costs ~max over spindles, not the sum."""

    def run(n):
        volume = make_stripe(n, mb=64, chunk=128)
        payload = os.urandom(512 * 2048)
        for i in range(8):
            volume.write(i * 2048, payload)
        volume.barrier()
        return volume.clock.now

    t1, t4 = run(1), run(4)
    assert t1 / t4 >= 3.0


def test_striped_read_costs_max_not_sum():
    def run(n):
        volume = make_stripe(n, mb=64, chunk=128)
        payload = os.urandom(512 * 2048)
        for i in range(8):
            volume.install(i * 2048, payload)
        t0 = volume.clock.now
        for i in range(8):
            assert volume.read(i * 2048, 2048) == payload
        return volume.clock.now - t0

    t1, t4 = run(1), run(4)
    assert t1 / t4 >= 3.0


def test_read_batch_overlaps_across_spindles():
    volume = make_stripe(4, mb=64, chunk=256)
    payload = os.urandom(512 * 256)
    for i in range(8):
        volume.install(i * 256, payload)

    serial = make_stripe(4, mb=64, chunk=256)
    for i in range(8):
        serial.install(i * 256, payload)

    t0 = volume.clock.now
    out = volume.read_batch([(i * 256, 256) for i in range(8)])
    batch_time = volume.clock.now - t0
    assert all(piece == payload for piece in out)

    t0 = serial.clock.now
    for i in range(8):
        serial.read(i * 256, 256)
    serial_time = serial.clock.now - t0
    assert serial_time / batch_time >= 2.0


def test_same_spindle_requests_queue_fifo():
    """Two batched reads of the same member serialize, not teleport."""
    volume = make_stripe(2, mb=16, chunk=64)
    payload = os.urandom(512 * 64)
    # Both extents land wholly on member 0 (chunks 0 and 2).
    volume.install(0, payload)
    volume.install(128, payload)
    t0 = volume.clock.now
    volume.read_batch([(0, 64), (128, 64)])
    both = volume.clock.now - t0

    single = make_stripe(2, mb=16, chunk=64)
    single.install(0, payload)
    t0 = single.clock.now
    single.read(0, 64)
    one = single.clock.now - t0
    assert both > one  # second request waited for the first


def test_barrier_drains_all_spindles():
    volume = make_stripe(4, mb=16, chunk=8)
    volume.write(0, os.urandom(512 * 32))
    # Writes are queued: shared clock unchanged until the barrier.
    assert volume.clock.now == 0.0
    assert max(d.clock.now for d in volume.disks) > 0.0
    volume.barrier()
    assert volume.clock.now == max(d.clock.now for d in volume.disks)


def test_mirror_read_balances_to_least_busy():
    volume = make_mirror(2)
    data = os.urandom(512 * 8)
    volume.write(0, data)
    volume.barrier()
    reads_before = [d.stats.reads for d in volume.disks]
    for _ in range(6):
        volume.read(0, 8)
    gained = [d.stats.reads - b for d, b in zip(volume.disks, reads_before)]
    # Least-busy balancing alternates between equally-loaded replicas.
    assert min(gained) >= 2


# ----------------------------------------------------------------------
# N=1 figure identity
# ----------------------------------------------------------------------


def test_single_member_volume_is_figure_identical_to_bare_disk():
    bare = SimulatedDisk(fast_test_disk(capacity_mb=16), VirtualClock())
    volume = make_stripe(1, mb=16)
    member = volume.disks[0]

    ops = []
    rng_state = 1234567
    for i in range(40):
        rng_state = (rng_state * 1103515245 + 12345) % (2**31)
        lba = rng_state % 20000
        n = 1 + rng_state % 16
        if i % 3 == 0:
            ops.append(("w", lba, os.urandom(512 * n)))
        elif i % 7 == 0:
            ops.append(("b",))
        else:
            ops.append(("r", lba, n))

    for op in ops:
        if op[0] == "w":
            bare.write(op[1], op[2])
            volume.write(op[1], op[2])
        elif op[0] == "b":
            bare.barrier()
            volume.barrier()
        else:
            assert bare.read(op[1], op[2]) == volume.read(op[1], op[2])
    bare.barrier()
    volume.barrier()

    assert volume.clock.now == bare.clock.now
    assert member.stats.as_dict() == bare.stats.as_dict()


# ----------------------------------------------------------------------
# Stats / metrics / tracing plumbing
# ----------------------------------------------------------------------


def test_volume_stats_rollup_and_snapshot():
    volume = make_stripe(4, mb=16, chunk=8)
    payload = os.urandom(512 * 32)
    for i in range(4):
        volume.write(i * 32, payload)
    volume.barrier()
    volume.read(0, 32)

    rollup = volume.volume_stats.as_dict()
    assert rollup["n_disks"] == 4
    assert rollup["writes"] == 4
    assert rollup["reads"] == 1
    assert rollup["barriers"] == 1
    assert rollup["total_bytes_written"] == 4 * len(payload)
    assert len(rollup["per_disk"]) == 4
    assert 0.0 < rollup["request_balance"] <= 1.0
    assert rollup["write_latency_p50"] > 0.0
    assert rollup["read_latency_p99"] > 0.0
    assert rollup["max_queue_depth"] >= 4

    frozen = volume.volume_stats.snapshot()
    volume.read(0, 32)
    assert frozen.as_dict()["reads"] == 1  # snapshot is decoupled
    assert volume.volume_stats.as_dict()["reads"] == 2


def test_stack_registry_adopts_volume_layer():
    spec = BuildSpec.from_scale(0.1)
    fs, lld = build_minix_lld(spec, n_disks=2)
    registry = stack_registry(fs=fs, lld=lld)
    merged = registry.collect()
    assert any(key.startswith("volume.") for key in merged)
    assert merged["volume.n_disks"] == 2


def test_attach_tracer_reaches_every_spindle():
    volume = make_stripe(2, mb=16)
    tracer = Tracer(volume.clock)
    attach_tracer(tracer, volume)
    assert volume.tracer is tracer
    for disk in volume.disks:
        assert disk.tracer is tracer
    volume.write(0, os.urandom(512))
    volume.barrier()
    names = {span.name for span in tracer.spans}
    assert "volume.write" in names
    assert "disk.write" in names
    attach_tracer(None, volume)
    assert volume.tracer is None
    assert volume.disks[0].tracer is None


# ----------------------------------------------------------------------
# LLD over a volume, end to end
# ----------------------------------------------------------------------


def test_lld_on_striped_volume_round_trips_and_recovers():
    spec = BuildSpec.from_scale(0.1)
    fs, lld = build_minix_lld(spec, n_disks=4)
    assert lld.layout.spindle_count == 4
    assert lld.layout.slot_spindles is not None

    contents = {}
    for i in range(30):
        name = f"/file{i}"
        fd = fs.open(name, create=True)
        data = os.urandom(4096 + (i % 4) * 4096)
        fs.write(fd, data)
        fs.close(fd)
        contents[name] = data
    fs.sync()

    for name, data in contents.items():
        fd = fs.open(name)
        assert fs.read(fd, len(data)) == data
        fs.close(fd)

    # Crash (no shutdown): a fresh LLD over the same volume must
    # one-sweep recover; sweep requests overlap across the spindles.
    from repro.lld import LLD

    lld2 = LLD(lld.disk, lld.config)
    lld2.initialize()
    assert lld2.recovery_report is not None
    assert lld2.recovery_report.summaries_valid >= 1


def test_lld_slot_placement_round_robins_spindles():
    spec = BuildSpec.from_scale(0.1)
    _fs, lld = build_minix_lld(spec, n_disks=4)
    spindles = lld.layout.slot_spindles
    # Segment-granular chunks: every slot maps wholly to one spindle, and
    # consecutive slots alternate members.
    assert spindles is not None
    assert set(spindles) == {0, 1, 2, 3}
    assert all(
        spindles[i] != spindles[i + 1] for i in range(min(8, len(spindles) - 1))
    )


def test_fresh_volume_defaults_to_segment_granular_chunks():
    spec = BuildSpec.from_scale(0.1)
    volume = fresh_volume(spec, 4)
    assert volume.chunk_sectors == spec.segment_size // 512
